"""Observability layer: recorder, metrics, Chrome export, overlap properties.

The last class holds the §5.5/§5.6 overlap assertions the paper motivates:
they are expressed against the typed event stream, the same stream the
ASCII Gantt and the Chrome-trace export read.
"""

import json

import numpy as np
import pytest

from repro.core.runtime import FluidiCLRuntime
from repro.harness.timeline import extract_spans
from repro.hw.machine import build_machine
from repro.obs import (
    EventKind,
    EventRecorder,
    MetricsRegistry,
    Phase,
    pair_spans,
    to_chrome_trace,
)
from repro.ocl.ndrange import NDRange

from tests.conftest import make_scale_kernel


# ----------------------------------------------------------------------
# EventRecorder: record ingestion and typed queries
# ----------------------------------------------------------------------
class TestEventRecorder:
    def test_command_records_become_spans(self):
        recorder = EventRecorder()
        recorder.record(0.0, "cmd_start",
                        {"queue": "q0", "type": "write_buffer", "buffer": "x"})
        recorder.record(2.0, "cmd_end",
                        {"queue": "q0", "type": "write_buffer", "buffer": "x"})
        spans = recorder.command_spans()
        assert len(spans) == 1
        span = spans[0]
        assert span.track == "q0"
        assert span.kind is EventKind.COMMAND
        assert span.start == 0.0 and span.end == 2.0
        assert span.duration == 2.0

    def test_spans_pair_fifo_per_track(self):
        """In-order queues pair begin/end FIFO; tracks never cross-pair."""
        recorder = EventRecorder()
        recorder.record(0.0, "cmd_start", {"queue": "a", "type": "k"})
        recorder.record(1.0, "cmd_start", {"queue": "b", "type": "k"})
        recorder.record(3.0, "cmd_end", {"queue": "b", "type": "k"})
        recorder.record(5.0, "cmd_end", {"queue": "a", "type": "k"})
        spans = {s.track: s for s in recorder.command_spans()}
        assert (spans["a"].start, spans["a"].end) == (0.0, 5.0)
        assert (spans["b"].start, spans["b"].end) == (1.0, 3.0)

    def test_end_attrs_override_begin_attrs(self):
        recorder = EventRecorder()
        recorder.record(0.0, "kernel_begin", {"kernel": "k", "groups": 8})
        recorder.record(1.0, "kernel_end", {"kernel": "k", "path": "merged"})
        (span,) = recorder.event_spans(EventKind.KERNEL)
        assert span.attrs["groups"] == 8
        assert span.attrs["path"] == "merged"

    def test_unknown_category_maps_to_generic_instant(self):
        recorder = EventRecorder()
        recorder.record(0.5, "somebody_elses_category", {"label": "x"})
        (event,) = recorder.events
        assert event.kind is EventKind.GENERIC
        assert event.phase is Phase.INSTANT
        assert event.name == "somebody_elses_category"

    def test_counts_count_spans_once(self):
        recorder = EventRecorder()
        recorder.record(0.0, "kernel_begin", {"kernel": "k"})
        recorder.record(1.0, "kernel_end", {"kernel": "k"})
        recorder.record(0.2, "pool_hit", {"label": "orig", "nbytes": 64})
        counts = recorder.counts()
        assert counts["kernel"] == 1
        assert counts["pool"] == 1

    def test_clear_resets_both_streams(self):
        recorder = EventRecorder()
        recorder.record(0.0, "pool_miss", {"label": "orig", "nbytes": 64})
        recorder.clear()
        assert recorder.events == []
        assert recorder.records == []

    def test_pair_spans_ignores_unmatched_begin(self):
        recorder = EventRecorder()
        recorder.record(0.0, "dh_readback_begin", {"kernel": "k", "kernel_id": 1})
        assert pair_spans(recorder.events) == []


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_is_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("merges")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_counter_view_preserves_dict_interface(self):
        registry = MetricsRegistry()
        view = registry.counter_view()
        view.update(merges=0, reads=0)
        view["merges"] += 1
        assert view["merges"] == 1
        assert set(view) == {"merges", "reads"}
        assert dict(view) == {"merges": 1, "reads": 0}

    def test_counter_view_rejects_decrease_and_delete(self):
        registry = MetricsRegistry()
        view = registry.counter_view()
        view["n"] = 5
        with pytest.raises(ValueError):
            view["n"] = 2
        with pytest.raises(TypeError):
            del view["n"]

    def test_missing_counter_raises_keyerror(self):
        view = MetricsRegistry().counter_view()
        with pytest.raises(KeyError):
            view["nope"]

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("kernel_seconds")
        for value in (1.0, 3.0, 2.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["min"] == 1.0 and summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 3.0

    def test_name_collision_across_types_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_snapshot_is_flat_and_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("merges").inc(2)
        registry.gauge("chunk").set(128.0)
        registry.histogram("t").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["merges"] == 2
        assert snapshot["chunk"] == 128.0
        assert snapshot["t.count"] == 1
        json.dumps(snapshot)


# ----------------------------------------------------------------------
# End-to-end: one traced cooperative run feeds every consumer
# ----------------------------------------------------------------------
def _traced_run(n=16384, gpu_eff=0.4, cpu_eff=0.6):
    machine = build_machine(trace=True)
    runtime = FluidiCLRuntime(machine)
    spec = make_scale_kernel(n, gpu_eff=gpu_eff, cpu_eff=cpu_eff,
                             work_scale=32.0)
    x = runtime.create_buffer("x", (n,), np.float32)
    y = runtime.create_buffer("y", (n,), np.float32)
    runtime.enqueue_write_buffer(x, np.ones(n, dtype=np.float32))
    runtime.enqueue_nd_range_kernel(
        spec, NDRange(n, 16), {"x": x, "y": y, "alpha": 2.0}
    )
    runtime.finish()
    runtime.drain()
    return machine, runtime


class TestTracedRun:
    def test_kernel_span_brackets_the_run(self):
        machine, runtime = _traced_run()
        (span,) = machine.tracer.event_spans(EventKind.KERNEL)
        record = runtime.records[0]
        assert span.start == pytest.approx(record.start_time)
        assert span.attrs["kernel_id"] == record.kernel_id

    def test_subkernel_events_match_record(self):
        machine, runtime = _traced_run()
        launches = machine.tracer.instants(EventKind.SUBKERNEL)
        assert len(launches) == runtime.records[0].subkernels
        assert len(launches) == runtime.stats.extra["subkernels_launched"]

    def test_chrome_trace_is_valid(self):
        machine, runtime = _traced_run()
        trace = to_chrome_trace(machine.tracer, process_name="test",
                                metrics=runtime.metrics.snapshot())
        events = trace["traceEvents"]
        assert events, "expected a non-empty traceEvents array"
        assert {e["ph"] for e in events} <= {"X", "i", "M"}
        for entry in events:
            assert {"name", "ph", "pid", "tid"} <= set(entry)
            if entry["ph"] == "X":
                assert entry["dur"] >= 0.0
                assert entry["ts"] >= 0.0
        metadata = [e for e in events if e["ph"] == "M"]
        named = {e["args"]["name"] for e in metadata}
        assert "test" in named  # process_name
        assert "fluidicl-app" in named  # one thread lane per track
        json.dumps(trace)  # fully serializable
        assert trace["otherData"]["metrics"]["merges"] >= 0

    def test_gantt_and_chrome_read_the_same_stream(self):
        """The ASCII Gantt's spans and the exporter's "X" command entries
        come from the identical paired stream — same count, same extent."""
        machine, _ = _traced_run()
        recorder = machine.tracer
        gantt_spans = extract_spans(recorder)
        chrome_commands = [
            e for e in to_chrome_trace(recorder)["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "command"
        ]
        assert len(gantt_spans) == len(chrome_commands)
        assert max(s.end for s in gantt_spans) * 1e6 == pytest.approx(
            max(e["ts"] + e["dur"] for e in chrome_commands)
        )


# ----------------------------------------------------------------------
# Overlap properties (paper §5.5/§5.6) via the event stream
# ----------------------------------------------------------------------
class TestOverlapProperties:
    def _two_kernel_run(self):
        machine = build_machine(trace=True)
        runtime = FluidiCLRuntime(machine)
        n = 16384
        # GPU-dominant: both kernels commit on the GPU and spawn a
        # background dh read-back.
        spec = make_scale_kernel(n, gpu_eff=0.9, cpu_eff=0.05,
                                 work_scale=32.0)
        x = runtime.create_buffer("x", (n,), np.float32)
        y1 = runtime.create_buffer("y1", (n,), np.float32)
        y2 = runtime.create_buffer("y2", (n,), np.float32)
        runtime.enqueue_write_buffer(x, np.ones(n, dtype=np.float32))
        runtime.enqueue_nd_range_kernel(
            spec, NDRange(n, 16), {"x": x, "y": y1, "alpha": 2.0}
        )
        runtime.enqueue_nd_range_kernel(
            spec, NDRange(n, 16), {"x": x, "y": y2, "alpha": 3.0}
        )
        runtime.finish()
        runtime.drain()
        return machine, runtime

    def test_dh_readback_overlaps_next_kernel(self):
        """§5.5/§5.6: the device-to-host read-back of kernel k proceeds in
        the background, overlapped with kernel k+1's execution."""
        machine, runtime = self._two_kernel_run()
        recorder = machine.tracer
        kernels = sorted(recorder.event_spans(EventKind.KERNEL),
                         key=lambda s: s.start)
        readbacks = sorted(recorder.event_spans(EventKind.DH_READBACK),
                           key=lambda s: s.start)
        assert len(kernels) == 2 and len(readbacks) == 2
        first_dh, second_kernel = readbacks[0], kernels[1]
        assert first_dh.attrs["kernel_id"] == kernels[0].attrs["kernel_id"]
        assert first_dh.overlap(second_kernel) > 0.0

    def test_stale_discard_events_match_counter(self):
        """Every ``stale_dh_discards`` increment has a matching typed event
        (and vice versa) — the counter and the stream cannot drift."""
        machine = build_machine(trace=True)
        runtime = FluidiCLRuntime(machine)
        n = 4096
        spec = make_scale_kernel(n, gpu_eff=0.9, cpu_eff=0.05,
                                 work_scale=32.0)
        x = runtime.create_buffer("x", (n,), np.float32)
        y = runtime.create_buffer("y", (n,), np.float32)
        runtime.enqueue_write_buffer(x, np.ones(n, dtype=np.float32))
        runtime.enqueue_nd_range_kernel(
            spec, NDRange(n, 16), {"x": x, "y": y, "alpha": 2.0}
        )
        # Overwrite y while its dh read-back is in flight: the late data
        # must be discarded, once per discard event.
        runtime.enqueue_write_buffer(y, np.full(n, -1.0, dtype=np.float32))
        runtime.finish()
        runtime.drain()
        discards = machine.tracer.instants(EventKind.STALE_DISCARD)
        assert len(discards) == runtime.stats.extra["stale_dh_discards"]
        assert len(discards) >= 1
        for event in discards:
            assert event.attrs["superseded_by"] > event.attrs["kernel_id"]
