"""Property-based tests for the adaptive chunker."""

import pytest
from hypothesis import given, strategies as st

from repro.core.chunking import AdaptiveChunker


@given(
    total=st.integers(1, 5000),
    cu=st.integers(1, 64),
    initial=st.floats(0.01, 1.0),
    step=st.floats(0.0, 1.0),
    speeds=st.lists(st.floats(1e-6, 1e-2), min_size=0, max_size=20),
)
def test_chunker_always_terminates_and_covers(total, cu, initial, step, speeds):
    """Driving the chunker like the scheduler does always covers the whole
    NDRange in finitely many valid chunks."""
    chunker = AdaptiveChunker(total, cu, initial_fraction=initial,
                              step_fraction=step)
    remaining = total
    iterations = 0
    speed_iter = iter(speeds)
    while remaining > 0:
        chunk = chunker.next_chunk(remaining)
        assert 1 <= chunk <= remaining
        # The allocation fills dispatch waves unless work ran out.
        assert chunk % cu == 0 or chunk == remaining
        per_wg = next(speed_iter, 1e-4)
        chunker.observe(chunk, chunk * per_wg)
        remaining -= chunk
        iterations += 1
        assert iterations <= total, "chunker failed to make progress"
    assert remaining == 0


@given(
    total=st.integers(10, 2000),
    cu=st.integers(1, 16),
)
def test_chunk_never_shrinks_while_growing(total, cu):
    """Monotone growth: under strictly improving averages the chunk size
    is non-decreasing until saturation."""
    chunker = AdaptiveChunker(total, cu)
    previous = 0
    average = 1.0
    for _ in range(10):
        chunk = chunker.next_chunk(total)
        assert chunk >= min(previous, total)
        previous = chunk
        average *= 0.5  # strictly improving
        chunker.observe(chunk, chunk * average)


@given(total=st.integers(1, 100), cu=st.integers(1, 8))
def test_first_chunk_at_least_compute_units(total, cu):
    chunker = AdaptiveChunker(total, cu, initial_fraction=0.01)
    assert chunker.next_chunk(total) >= min(cu, total)


@given(
    total=st.integers(64, 4000),
    cu=st.integers(1, 16),
    surpluses=st.lists(st.integers(0, 48), min_size=1, max_size=12),
    per_wg=st.floats(1e-6, 1e-3),
)
def test_covering_slice_observation_preserves_device_speed(total, cu,
                                                           surpluses, per_wg):
    """§5.2 accounting: a covering slice executes ``chunk + surplus``
    groups.  Feeding the chunker the *launched* count (as the scheduler
    does) keeps the recorded per-group average equal to the device's true
    speed regardless of surplus; feeding only the requested chunk would
    inflate it by ``launched / chunk``."""
    chunker = AdaptiveChunker(total, cu)
    remaining = total
    for surplus in surpluses:
        if remaining < 1:
            break
        chunk = chunker.next_chunk(remaining)
        launched = chunk + surplus
        elapsed = launched * per_wg  # the slice really ran `launched` groups
        chunker.observe(launched, elapsed)
        observed_groups, observed_avg = chunker.history[-1]
        assert observed_groups == launched
        assert observed_avg == pytest.approx(per_wg, rel=1e-9)
        remaining -= chunk
