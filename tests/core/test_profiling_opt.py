"""Unit tests for online kernel-version profiling (section 6.6)."""

import pytest

from repro.core.profiling_opt import OnlineKernelProfiler

from tests.conftest import make_scale_kernel


def versions(n=2):
    base = make_scale_kernel(64)
    return [base] + [
        base.with_version(f"v{i}", base.body) for i in range(1, n)
    ]


class TestProfiler:
    def test_single_version_never_probes(self):
        profiler = OnlineKernelProfiler(versions(1))
        assert not profiler.probing
        assert profiler.chosen.version == "baseline"

    def test_disabled_uses_first(self):
        profiler = OnlineKernelProfiler(versions(3), enabled=False)
        assert not profiler.probing
        assert profiler.chosen.version == "baseline"

    def test_probes_each_version_once(self):
        profiler = OnlineKernelProfiler(versions(3))
        seen = []
        while profiler.probing:
            seen.append(profiler.next_version().version)
            profiler.observe(1.0)
        assert seen == ["baseline", "v1", "v2"]

    def test_picks_fastest(self):
        profiler = OnlineKernelProfiler(versions(3))
        timings = [3.0, 1.0, 2.0]
        for t in timings:
            profiler.observe(t)
        assert profiler.chosen.version == "v1"
        assert profiler.next_version().version == "v1"

    def test_observe_after_choice_is_ignored(self):
        profiler = OnlineKernelProfiler(versions(2))
        profiler.observe(1.0)
        profiler.observe(2.0)
        profiler.observe(0.0)  # no effect
        assert profiler.chosen.version == "baseline"

    def test_summary(self):
        profiler = OnlineKernelProfiler(versions(2))
        profiler.observe(2.0)
        profiler.observe(1.0)
        summary = profiler.summary()
        assert summary["chosen"] == "v1"
        assert summary["timings"] == [2.0, 1.0]

    def test_empty_versions_rejected(self):
        with pytest.raises(ValueError):
            OnlineKernelProfiler([])
