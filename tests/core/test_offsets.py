"""Unit and property tests for subkernel offset calculation (section 5.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.offsets import subkernel_slice
from repro.ocl.ndrange import NDRange


class TestSubkernelSlice:
    def test_1d_exact(self):
        nd = NDRange(160, 16)  # 10 groups
        launch = subkernel_slice(nd, 3, 7)
        assert launch.useful_groups == 4
        assert launch.surplus_groups == 0
        assert launch.slice_range.group_offset == (3,)

    def test_2d_whole_rows(self):
        nd = NDRange((64, 64), (16, 16))  # 4x4 groups
        launch = subkernel_slice(nd, 6, 10)
        # Window spans rows 1..2 of the slowest dim: 8 groups launched.
        assert launch.launched_groups == 8
        assert launch.surplus_groups == 4

    def test_top_end_window(self):
        nd = NDRange((64, 64), (16, 16))
        launch = subkernel_slice(nd, 12, 16)
        assert launch.slice_range.group_offset == (0, 3)
        assert launch.surplus_groups == 0

    def test_full_range(self):
        nd = NDRange((64, 64), (16, 16))
        launch = subkernel_slice(nd, 0, 16)
        assert launch.launched_groups == 16
        assert launch.surplus_groups == 0

    def test_bad_window(self):
        nd = NDRange(160, 16)
        with pytest.raises(ValueError):
            subkernel_slice(nd, 7, 3)

    @given(
        nx=st.integers(1, 6),
        ny=st.integers(1, 6),
        nz=st.integers(1, 4),
        data=st.data(),
    )
    def test_cover_property_3d(self, nx, ny, nz, data):
        nd = NDRange((nx * 2, ny * 2, nz * 2), (2, 2, 2))
        total = nd.total_groups
        start = data.draw(st.integers(0, total - 1))
        end = data.draw(st.integers(start + 1, total))
        launch = subkernel_slice(nd, start, end)
        # Every useful group lies inside the launched slice, and the
        # surplus never exceeds two hyper-rows minus the useful groups.
        inner = total // nd.num_groups[-1]
        assert launch.useful_groups == end - start
        assert 0 <= launch.surplus_groups < 2 * inner
