"""Unit tests for the GPU buffer pool (paper section 6.1)."""

import numpy as np
import pytest

from repro.core.pool import BufferPool
from repro.ocl.platform import Platform


@pytest.fixture
def gpu(machine):
    return Platform(machine).gpu


class TestPooling:
    def test_first_acquire_is_a_miss_with_cost(self, gpu):
        pool = BufferPool(gpu)
        buffer, seconds = pool.acquire((64,), np.float32)
        assert seconds > 0
        assert pool.misses == 1
        assert pool.hits == 0

    def test_reuse_is_free(self, gpu):
        pool = BufferPool(gpu)
        buffer, _ = pool.acquire((64,), np.float32)
        pool.release(buffer)
        again, seconds = pool.acquire((64,), np.float32)
        assert again is buffer
        assert seconds == 0.0
        assert pool.hits == 1

    def test_different_shape_is_a_miss(self, gpu):
        pool = BufferPool(gpu)
        buffer, _ = pool.acquire((64,), np.float32)
        pool.release(buffer)
        _other, seconds = pool.acquire((128,), np.float32)
        assert seconds > 0
        assert pool.misses == 2

    def test_release_unknown_buffer(self, gpu):
        pool = BufferPool(gpu)
        foreign = gpu.create_buffer((4,), np.float32)
        with pytest.raises(ValueError):
            pool.release(foreign)

    def test_in_use_accounting(self, gpu):
        pool = BufferPool(gpu)
        buffer, _ = pool.acquire((64,), np.float32)
        assert pool.in_use_count == 1
        assert pool.idle_count == 0
        pool.release(buffer)
        assert pool.in_use_count == 0
        assert pool.idle_count == 1


class TestDisabledPool:
    def test_every_acquire_allocates(self, gpu):
        pool = BufferPool(gpu, enabled=False)
        a, t1 = pool.acquire((64,), np.float32)
        pool.release(a)
        b, t2 = pool.acquire((64,), np.float32)
        assert t1 > 0 and t2 > 0
        assert pool.misses == 2

    def test_release_frees_device_memory(self, gpu):
        pool = BufferPool(gpu, enabled=False)
        used_before = gpu.memory.used
        buffer, _ = pool.acquire((1024,), np.float32)
        pool.release(buffer)
        assert gpu.memory.used == used_before


class TestTrimAndDrain:
    def test_trim_frees_surplus(self, gpu):
        pool = BufferPool(gpu)
        buffers = [pool.acquire((64,), np.float32)[0] for _ in range(5)]
        for buffer in buffers:
            pool.release(buffer)
        freed = pool.trim(keep_per_key=2)
        assert freed == 3
        assert pool.idle_count == 2

    def test_drain_frees_everything_idle(self, gpu):
        pool = BufferPool(gpu)
        used_before = gpu.memory.used
        buffer, _ = pool.acquire((64,), np.float32)
        pool.release(buffer)
        pool.drain()
        assert gpu.memory.used == used_before
        assert pool.idle_count == 0

    def test_allocation_time_scales_with_size(self):
        small = BufferPool.allocation_time(1024)
        large = BufferPool.allocation_time(64 << 20)
        assert large > small
