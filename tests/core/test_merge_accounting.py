"""Regression lock on the merge kernel's byte accounting.

The ``on_diff`` hook of :func:`repro.core.merge.build_merge_kernel` feeds
the runtime's ``merge_done`` events and the :mod:`repro.check`
merge-accounting invariant.  These tests pin its contract with seeded
random dirty masks: the merged buffer equals the NumPy oracle, and the
reported byte counts sum to exactly the CPU-written (actually changed)
region — not the launched region, not the whole buffer.
"""

import random

import numpy as np
import pytest

from repro.core.merge import (
    build_merge_kernel,
    merge_ndrange,
    reference_merge,
)
from repro.kernels.transforms import plain_variant
from repro.ocl.kernel import Kernel
from repro.ocl.platform import Platform


def run_accounted_merge(machine, gpu_data, cpu_data, orig):
    """Run the merge through the real device path with accounting on.

    Returns ``(merged, per_group_bytes)``.
    """
    platform = Platform(machine)
    gpu = platform.gpu
    queue = platform.create_context().create_queue(gpu)
    n = gpu_data.size
    gpu_buf = gpu.create_buffer(gpu_data.shape, gpu_data.dtype)
    cpu_buf = gpu.create_buffer(gpu_data.shape, gpu_data.dtype)
    orig_buf = gpu.create_buffer(gpu_data.shape, gpu_data.dtype)
    gpu_buf.write_from(gpu_data)
    cpu_buf.write_from(cpu_data)
    orig_buf.write_from(orig)
    reports = []
    spec = build_merge_kernel(gpu_buf.nbytes, gpu_data.dtype.itemsize,
                              on_diff=reports.append)
    kernel = Kernel(
        plain_variant(spec),
        {"cpu_buf": cpu_buf, "orig": orig_buf, "gpu_buf": gpu_buf,
         "number_elems": n},
    )
    event = queue.enqueue_nd_range_kernel(kernel, merge_ndrange(n))
    machine.run_until(event.done)
    return gpu_buf.snapshot(), reports


def random_dirty_case(seed, n=6000):
    """Buffers where the CPU changed exactly a random dirty mask."""
    rng = np.random.default_rng(seed)
    orig = rng.standard_normal(n).astype(np.float32)
    gpu_data = orig.copy()
    gpu_mask = rng.random(n) < rng.uniform(0.0, 0.9)
    gpu_data[gpu_mask] = orig[gpu_mask] + 1.0  # GPU result, bottom part
    cpu_data = orig.copy()
    cpu_mask = rng.random(n) < rng.uniform(0.0, 0.9)
    cpu_data[cpu_mask] = orig[cpu_mask] + 2.0  # CPU result, guaranteed != orig
    return orig, gpu_data, cpu_data, cpu_mask


class TestMergeByteAccounting:
    @pytest.mark.parametrize("seed", range(8))
    def test_reported_bytes_equal_cpu_written_region(self, machine, seed):
        orig, gpu_data, cpu_data, cpu_mask = random_dirty_case(seed)
        merged, reports = run_accounted_merge(machine, gpu_data, cpu_data,
                                              orig)
        assert np.array_equal(merged,
                              reference_merge(gpu_data, cpu_data, orig))
        expected_bytes = int(cpu_mask.sum()) * orig.dtype.itemsize
        assert sum(reports) == expected_bytes
        assert len(reports) == merge_ndrange(orig.size).total_groups

    def test_clean_cpu_buffer_reports_zero_bytes(self, machine):
        orig = np.arange(5000, dtype=np.float32)
        merged, reports = run_accounted_merge(machine, orig * 3, orig.copy(),
                                              orig)
        assert sum(reports) == 0
        assert np.array_equal(merged, orig * 3)

    def test_fully_dirty_buffer_reports_every_byte(self, machine):
        orig = np.zeros(5000, dtype=np.float32)
        cpu_data = np.ones(5000, dtype=np.float32)
        merged, reports = run_accounted_merge(machine, orig.copy(), cpu_data,
                                              orig)
        assert sum(reports) == orig.nbytes
        assert np.all(merged == 1)

    def test_partition_split_reports_only_the_cpu_side(self, machine):
        """The paper's layout: GPU wrote [0, split), CPU wrote [split, n)."""
        rng = random.Random("merge-split")
        n = 8192
        np_rng = np.random.default_rng(11)
        orig = np_rng.standard_normal(n).astype(np.float32)
        result = orig + 1.0
        for _ in range(5):
            split = rng.randint(0, n)
            gpu_data = orig.copy()
            gpu_data[:split] = result[:split]
            cpu_data = orig.copy()
            cpu_data[split:] = result[split:]
            merged, reports = run_accounted_merge(machine, gpu_data,
                                                  cpu_data, orig)
            assert np.array_equal(merged, result)
            assert sum(reports) == (n - split) * orig.dtype.itemsize

    def test_accounting_does_not_change_merge_semantics(self, machine):
        orig, gpu_data, cpu_data, _ = random_dirty_case(99)
        with_hook, _ = run_accounted_merge(machine, gpu_data, cpu_data, orig)
        from tests.core.test_merge import run_merge_kernel
        without_hook = run_merge_kernel(machine, gpu_data, cpu_data, orig)
        assert np.array_equal(with_hook, without_hook)
