"""Property-based test: FluidiCL is transparent for arbitrary kernel chains.

Random programs — chains of scale/accumulate kernels with random device
affinities over a small set of buffers — must produce bit-identical results
to a NumPy oracle, regardless of which regime (GPU-dominant, CPU-complete,
cooperative merge) each kernel lands in.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.runtime import FluidiCLRuntime
from repro.hw.machine import build_machine
from repro.ocl.ndrange import NDRange

from tests.conftest import make_accumulate_kernel, make_scale_kernel

N = 512
LOCAL = 16

# Each step: (kind, src_buffer, dst_buffer, gpu_eff, cpu_eff)
_step = st.tuples(
    st.sampled_from(["scale", "accumulate"]),
    st.integers(0, 2),
    st.integers(0, 2),
    st.sampled_from([0.01, 0.2, 0.6, 0.9]),
    st.sampled_from([0.01, 0.2, 0.6, 0.9]),
)


@settings(max_examples=30, deadline=None)
@given(steps=st.lists(_step, min_size=1, max_size=5),
       seed=st.integers(0, 1000))
def test_random_kernel_chain_matches_numpy(steps, seed):
    rng = np.random.default_rng(seed)
    initial = [rng.standard_normal(N).astype(np.float32) for _ in range(3)]

    # NumPy oracle.
    oracle = [array.copy() for array in initial]
    for kind, src, dst, _g, _c in steps:
        if src == dst:
            continue
        if kind == "scale":
            oracle[dst] = (np.float32(2.0) * oracle[src]).astype(np.float32)
        else:
            oracle[dst] = (oracle[dst] + oracle[src]).astype(np.float32)

    # FluidiCL execution.
    machine = build_machine()
    runtime = FluidiCLRuntime(machine)
    buffers = []
    for i, array in enumerate(initial):
        buf = runtime.create_buffer(f"b{i}", (N,), np.float32)
        runtime.enqueue_write_buffer(buf, array)
        buffers.append(buf)
    for index, (kind, src, dst, gpu_eff, cpu_eff) in enumerate(steps):
        if src == dst:
            continue
        if kind == "scale":
            spec = make_scale_kernel(
                N, LOCAL, gpu_eff=gpu_eff, cpu_eff=cpu_eff,
                name=f"scale{index}", work_scale=16.0,
            )
            args = {"x": buffers[src], "y": buffers[dst], "alpha": 2.0}
        else:
            spec = make_accumulate_kernel(
                N, LOCAL, gpu_eff=gpu_eff, cpu_eff=cpu_eff,
                name=f"acc{index}",
            )
            args = {"x": buffers[src], "y": buffers[dst]}
        runtime.enqueue_nd_range_kernel(spec, NDRange(N, LOCAL), args)

    outputs = [np.zeros(N, dtype=np.float32) for _ in range(3)]
    for buf, out in zip(buffers, outputs):
        runtime.enqueue_read_buffer(buf, out)
    runtime.finish()

    for i, (actual, expected) in enumerate(zip(outputs, oracle)):
        np.testing.assert_array_equal(
            actual, expected, err_msg=f"buffer b{i} diverged"
        )
