"""Front loss under the unified handler: any surviving front completes.

The device-set refactor folded the two asymmetric failover paths (GPU
lost -> CPU drains, CPU lost -> GPU carries on) into one front-loss
handler.  The first class is the pre-fix regression: killing the CPU
mid-run used to mis-commit the landed windows on several apps because
the "CPU finished everything" commit fired for a front that was already
lost.  The second class runs the same protocol on a three-device set and
kills each member in turn — whichever front dies, the survivors must
finish the range with correct numerics.
"""

import pytest

from repro.core.runtime import FluidiCLRuntime
from repro.faults import FaultKind, FaultSchedule, FaultSpec, install_faults
from repro.hw.machine import build_machine
from repro.polybench.suite import EXTENDED_SUITE, make_app

def midrun_strike(app_name, preset=None):
    """A strike time inside the first kernel of a clean reference run."""
    machine = build_machine(preset=preset) if preset else build_machine()
    runtime = FluidiCLRuntime(machine)
    app = make_app(app_name, "test")
    app.execute(runtime, check=False)
    runtime.drain()
    record = runtime.records[0]
    assert record.end_time > record.start_time
    return record.start_time + 0.5 * (record.end_time - record.start_time)


def run_app_with_loss(app_name, device, preset=None, at=None):
    if at is None:
        at = midrun_strike(app_name, preset=preset)
    machine = (build_machine(preset=preset, trace=True) if preset
               else build_machine(trace=True))
    runtime = FluidiCLRuntime(machine)
    install_faults(runtime, FaultSchedule.single(
        FaultKind.DEVICE_LOSS, at=at, device=device))
    app = make_app(app_name, "test")
    result = app.execute(runtime, check=True)
    runtime.drain()
    return machine, runtime, result


class TestCpuLossRegression:
    """Pre-fix failure: the sole-contributor commit must never credit a
    lost front's landing copy (the data lives on the live anchor)."""

    @pytest.mark.parametrize("app_name", EXTENDED_SUITE)
    def test_killing_cpu_midrun_stays_correct(self, app_name):
        machine, runtime, result = run_app_with_loss(app_name, "cpu")
        assert result.correct, (
            f"{app_name}: wrong numerics after CPU loss "
            f"(max rel err {result.max_relative_error:.3e})")
        assert runtime.cpu_device.health.lost
        failovers = [e for e in machine.tracer.events if e.name == "failover"]
        assert failovers and failovers[0].attrs["lost"] == "cpu"

    @pytest.mark.parametrize("app_name", EXTENDED_SUITE)
    def test_killing_gpu_midrun_stays_correct(self, app_name):
        _machine, runtime, result = run_app_with_loss(app_name, "gpu")
        assert result.correct, (
            f"{app_name}: wrong numerics after GPU loss "
            f"(max rel err {result.max_relative_error:.3e})")
        assert runtime.gpu_device.health.lost


class TestNDeviceFrontLoss:
    """cpu+2gpu: kill each member by name; the other two finish."""

    NAMES = ("Tesla C2070", "Tesla C2070 #2", "Xeon W3550")

    @pytest.mark.parametrize("victim", NAMES)
    def test_survivors_complete_the_range(self, victim):
        machine, runtime, result = run_app_with_loss(
            "gesummv", victim, preset="cpu+2gpu")
        assert result.correct, (
            f"wrong numerics after losing {victim} "
            f"(max rel err {result.max_relative_error:.3e})")
        lost = [f.name for f in runtime.device_set.fronts if f.lost]
        assert lost == [victim]
        assert len(runtime.device_set.survivors()) == 2
        failovers = [e for e in machine.tracer.events if e.name == "failover"]
        assert failovers, "front loss must emit a failover trace event"
        assert failovers[0].attrs["lost"] == victim
        assert failovers[0].attrs["survivor"] != victim

    def test_losing_every_worker_leaves_anchor_alone(self):
        """Both non-anchor fronts die; the anchor carries the kernels."""
        machine = build_machine(preset="cpu+2gpu", trace=True)
        runtime = FluidiCLRuntime(machine)
        strike = midrun_strike("gesummv", preset="cpu+2gpu")
        install_faults(runtime, FaultSchedule([
            FaultSpec(FaultKind.DEVICE_LOSS, at=strike,
                      device="Tesla C2070 #2"),
            FaultSpec(FaultKind.DEVICE_LOSS, at=strike * 1.2,
                      device="Xeon W3550"),
        ]))
        app = make_app("gesummv", "test")
        result = app.execute(runtime, check=True)
        runtime.drain()
        assert result.correct
        assert [f.name for f in runtime.device_set.survivors()] \
            == ["Tesla C2070"]


class TestIrregularFrontLoss:
    """cpu+2gpu kill matrix over the irregular apps.

    Stronger than the rtol checks above: SpMV and scan do all their
    float32 reductions privately per work-group, so whichever front dies,
    the merged survivor result must match the pure-NumPy float32 kernel
    mimic **bit for bit** — a wrong merge of even one landed window shows
    up as a byte diff, not as a tolerance-sized blur.
    """

    NAMES = ("Tesla C2070", "Tesla C2070 #2", "Xeon W3550")

    @pytest.mark.parametrize("victim", NAMES)
    @pytest.mark.parametrize("app_name", ("spmv", "scan"))
    def test_survivors_merge_bitwise(self, app_name, victim):
        at = midrun_strike(app_name, preset="cpu+2gpu")
        machine = build_machine(preset="cpu+2gpu", trace=True)
        runtime = FluidiCLRuntime(machine)
        install_faults(runtime, FaultSchedule.single(
            FaultKind.DEVICE_LOSS, at=at, device=victim))
        app = make_app(app_name, "test")
        inputs = app.fresh_inputs()
        outputs = app.host_program(runtime, inputs)
        runtime.finish()
        runtime.drain()
        lost = [f.name for f in runtime.device_set.fronts if f.lost]
        assert lost == [victim]
        assert len(runtime.device_set.survivors()) == 2
        for key, want in app.exact_reference(inputs).items():
            assert outputs[key].tobytes() == want.tobytes(), (
                f"{app_name}: output {key!r} not bit-identical after "
                f"losing {victim}")


class TestPerDeviceReadCounters:
    def test_reads_are_attributed_to_the_serving_device(self):
        machine = build_machine(preset="cpu+2gpu")
        runtime = FluidiCLRuntime(machine)
        app = make_app("gesummv", "test")
        result = app.execute(runtime, check=True)
        runtime.drain()
        assert result.correct
        extra = runtime.stats.extra
        per_device = [extra.get(f"reads_from[{f.name}]", 0)
                      for f in runtime.device_set.fronts]
        # the kind-aggregate keys stay, and per-device counts explain them
        assert extra["reads_from_cpu"] + extra["reads_from_gpu"] > 0
        assert sum(per_device) \
            == extra["reads_from_cpu"] + extra["reads_from_gpu"]
