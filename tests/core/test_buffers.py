"""Unit tests for dual-device buffers and version tracking (section 5.3)."""

import numpy as np
import pytest

from repro.core.buffers import DIRTY, FluidiBuffer
from repro.ocl.platform import Platform


@pytest.fixture
def fbuf(machine):
    platform = Platform(machine)
    gpu_buf = platform.gpu.create_buffer((16,), np.float32, name="b@gpu")
    cpu_buf = platform.cpu.create_buffer((16,), np.float32, name="b@cpu")
    return FluidiBuffer(machine.engine, "b", gpu_buf, cpu_buf)


class TestLifecycle:
    def test_initially_coherent_at_version_zero(self, fbuf):
        assert fbuf.gpu_current
        assert fbuf.cpu_current
        assert fbuf.latest == 0

    def test_host_write_updates_both(self, fbuf):
        fbuf.commit_host_write(3)
        assert fbuf.latest == 3
        assert fbuf.gpu_current and fbuf.cpu_current

    def test_expect_write_dirties_both(self, fbuf):
        fbuf.expect_write(5)
        assert fbuf.version_gpu == DIRTY
        assert fbuf.version_cpu == DIRTY
        assert not fbuf.gpu_current

    def test_expect_write_requires_newer_version(self, fbuf):
        fbuf.commit_host_write(3)
        with pytest.raises(ValueError):
            fbuf.expect_write(3)

    def test_commit_gpu(self, fbuf):
        fbuf.expect_write(4)
        fbuf.commit_gpu(4)
        assert fbuf.gpu_current
        assert not fbuf.cpu_current

    def test_commit_cpu(self, fbuf):
        fbuf.expect_write(4)
        fbuf.commit_cpu(4)
        assert fbuf.cpu_current
        assert not fbuf.gpu_current

    def test_dh_refresh_restores_cpu(self, fbuf):
        fbuf.expect_write(4)
        fbuf.commit_gpu(4)
        fbuf.mark_cpu_refreshed(4)
        assert fbuf.cpu_current
        assert not fbuf.dh_pending


class TestGates:
    def test_cpu_gate_fires_on_refresh(self, fbuf, machine):
        fbuf.expect_write(4)
        fbuf.commit_gpu(4)
        wait = fbuf.cpu_gate.wait()
        fbuf.mark_cpu_refreshed(4)
        assert machine.engine.run(wait) == 4

    def test_cpu_gate_fires_on_commit_cpu(self, fbuf, machine):
        fbuf.expect_write(4)
        wait = fbuf.cpu_gate.wait()
        fbuf.commit_cpu(4)
        assert machine.engine.run(wait) == 4

    def test_cpu_gate_fires_on_host_write(self, fbuf, machine):
        wait = fbuf.cpu_gate.wait()
        fbuf.commit_host_write(9)
        assert machine.engine.run(wait) == 9


class TestValidation:
    def test_mismatched_device_copies(self, machine):
        platform = Platform(machine)
        gpu_buf = platform.gpu.create_buffer((16,), np.float32)
        cpu_buf = platform.cpu.create_buffer((8,), np.float32)
        with pytest.raises(ValueError):
            FluidiBuffer(machine.engine, "b", gpu_buf, cpu_buf)

    def test_geometry_properties(self, fbuf):
        assert fbuf.shape == (16,)
        assert fbuf.dtype == np.float32
        assert fbuf.nbytes == 64
