"""AdaptiveChunker properties under skewed per-chunk cost (§5.1).

The irregular workloads hand the chunker a world the paper's dense
benchmarks never produce: per-work-group cost varying by orders of
magnitude.  Whatever the cost sequence does, the chunker must (a) always
return a usable allocation — at least one CU-multiple, never 0, never
more than remaining — (b) terminate the drain loop, and (c) converge:
once the observed average stops improving, the chunk settles permanently.
"""

import numpy as np
import pytest

from repro.core.chunking import AdaptiveChunker


def drain(chunker, per_group_cost, total):
    """Drain ``total`` groups, feeding back skewed observed durations.

    Returns the (chunk, settled_flag) history; asserts the universal
    allocation invariants on every iteration.
    """
    remaining = total
    cursor = 0
    history = []
    while remaining:
        chunk = chunker.next_chunk(remaining)
        assert chunk >= 1, "allocation must never be zero"
        assert chunk <= remaining
        assert chunk % chunker.compute_units == 0 or chunk == remaining, (
            "non-final allocations are rounded to compute-unit multiples")
        elapsed = float(np.sum(per_group_cost[cursor:cursor + chunk]))
        chunker.observe(chunk, elapsed)
        history.append((chunk, chunker.still_growing))
        cursor += chunk
        remaining -= chunk
    return history


def assert_settles_permanently(history):
    """Once still_growing flips off, the allocation never changes again
    (except the final remainder-capped chunk)."""
    flips = [i for i, (_c, growing) in enumerate(history) if not growing]
    if not flips:
        return
    settled_at = flips[0]
    assert all(not growing for _c, growing in history[settled_at:])
    steady = [c for c, _g in history[settled_at + 1:-1]]
    assert len(set(steady)) <= 1, (
        f"allocation kept moving after growth stopped: {steady}")


class TestPowerLawSkew:
    @pytest.mark.parametrize("seed", range(5))
    def test_drain_terminates_with_valid_allocations(self, seed):
        rng = np.random.default_rng(seed)
        total = 1024
        cost = 1e-6 * (1.0 + rng.pareto(1.3, total) * 16.0)
        chunker = AdaptiveChunker(total, compute_units=8)
        history = drain(chunker, cost, total)
        assert sum(c for c, _g in history) == total
        assert chunker.chunk <= total
        assert_settles_permanently(history)

    def test_heavy_head_stops_growth(self):
        # the first chunks hit pathologically expensive groups, later ones
        # are cheap: averages *improve*, so growth continues — then a
        # second expensive band flattens the curve and growth must stop
        total = 512
        cost = np.full(total, 1e-6)
        cost[:64] = 1e-3
        cost[256:320] = 5e-3
        chunker = AdaptiveChunker(total, compute_units=8)
        history = drain(chunker, cost, total)
        assert not chunker.still_growing
        assert_settles_permanently(history)


class TestBimodalSkew:
    @pytest.mark.parametrize("period", (2, 8, 32))
    def test_alternating_bands(self, period):
        total = 1024
        cost = np.where(
            (np.arange(total) // period) % 2 == 0, 1e-6, 5e-4)
        chunker = AdaptiveChunker(total, compute_units=8)
        history = drain(chunker, cost, total)
        assert sum(c for c, _g in history) == total
        assert_settles_permanently(history)


class TestAdversarialAlternating:
    def test_improve_then_regress_settles_at_first_regression(self):
        chunker = AdaptiveChunker(1000, compute_units=4,
                                  initial_fraction=0.1, step_fraction=0.1)
        first = chunker.chunk
        chunker.observe(100, 100 * 1e-6)   # first sample: always grows
        grown = chunker.chunk
        assert grown == first + chunker.step
        chunker.observe(200, 200 * 2e-6)   # regression: must settle
        assert not chunker.still_growing
        settled = chunker.chunk
        # ... and stay settled even if the average improves again
        chunker.observe(200, 200 * 1e-8)
        chunker.observe(200, 200 * 1e-9)
        assert chunker.chunk == settled
        assert not chunker.still_growing

    def test_exactly_epsilon_improvement_settles(self):
        chunker = AdaptiveChunker(1000, compute_units=4)
        chunker.observe(100, 100.0)
        base = chunker._previous_avg
        chunker.observe(100, 100 * base * 0.98)  # exactly epsilon: settle
        assert not chunker.still_growing


class TestAllocationBounds:
    def test_allocation_is_cu_floor_and_cu_rounded(self):
        chunker = AdaptiveChunker(1000, compute_units=7,
                                  initial_fraction=0.001)
        assert chunker.next_chunk(1000) == 7            # CU floor
        chunker.chunk = 15
        assert chunker.next_chunk(1000) == 21           # rounded up to CU
        assert chunker.next_chunk(10) == 10             # capped by remaining

    def test_chunk_never_exceeds_total_groups(self):
        chunker = AdaptiveChunker(64, compute_units=4, step_fraction=0.9)
        for _ in range(50):
            chunker.observe(4, 1e-9 / (chunker.chunk + 1))
        assert chunker.chunk <= 64

    def test_zero_step_disables_growth_under_skew(self):
        rng = np.random.default_rng(3)
        total = 256
        cost = 1e-6 * (1.0 + rng.pareto(1.3, total) * 16.0)
        chunker = AdaptiveChunker(total, compute_units=8, step_fraction=0.0)
        first = chunker.chunk
        drain(chunker, cost, total)
        assert chunker.chunk == first
        assert not chunker.still_growing
