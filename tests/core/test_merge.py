"""Unit and property tests for the diff+merge step (paper section 4.3)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.merge import (
    MERGE_LOCAL_SIZE,
    build_merge_kernel,
    merge_ndrange,
    reference_merge,
)
from repro.kernels.transforms import plain_variant
from repro.ocl.kernel import Kernel
from repro.ocl.platform import Platform


def run_merge_kernel(machine, gpu_data, cpu_data, orig):
    """Execute the merge kernel through the real device path."""
    platform = Platform(machine)
    gpu = platform.gpu
    queue = platform.create_context().create_queue(gpu)
    n = gpu_data.size
    gpu_buf = gpu.create_buffer(gpu_data.shape, gpu_data.dtype)
    cpu_buf = gpu.create_buffer(gpu_data.shape, gpu_data.dtype)
    orig_buf = gpu.create_buffer(gpu_data.shape, gpu_data.dtype)
    gpu_buf.write_from(gpu_data)
    cpu_buf.write_from(cpu_data)
    orig_buf.write_from(orig)
    spec = build_merge_kernel(gpu_buf.nbytes, gpu_data.dtype.itemsize)
    kernel = Kernel(
        plain_variant(spec),
        {"cpu_buf": cpu_buf, "orig": orig_buf, "gpu_buf": gpu_buf,
         "number_elems": n},
    )
    event = queue.enqueue_nd_range_kernel(kernel, merge_ndrange(n))
    machine.run_until(event.done)
    return gpu_buf.snapshot()


class TestMergeSemantics:
    def test_cpu_changes_win(self, machine):
        orig = np.zeros(8, dtype=np.float32)
        gpu_data = np.array([1, 1, 1, 1, 0, 0, 0, 0], dtype=np.float32)
        cpu_data = np.array([0, 0, 0, 0, 2, 2, 2, 2], dtype=np.float32)
        merged = run_merge_kernel(machine, gpu_data, cpu_data, orig)
        assert np.array_equal(
            merged, np.array([1, 1, 1, 1, 2, 2, 2, 2], dtype=np.float32)
        )

    def test_unchanged_cpu_regions_leave_gpu_data(self, machine):
        orig = np.arange(8, dtype=np.float32)
        gpu_data = orig * 10
        cpu_data = orig.copy()  # CPU computed nothing
        merged = run_merge_kernel(machine, gpu_data, cpu_data, orig)
        assert np.array_equal(merged, gpu_data)

    def test_overlap_with_identical_values_is_harmless(self, machine):
        orig = np.zeros(4, dtype=np.float32)
        both = np.array([5, 5, 5, 5], dtype=np.float32)
        merged = run_merge_kernel(machine, both, both, orig)
        assert np.array_equal(merged, both)

    def test_2d_buffers(self, machine):
        orig = np.zeros((4, 4), dtype=np.float32)
        gpu_data = orig.copy()
        gpu_data[:2] = 1
        cpu_data = orig.copy()
        cpu_data[2:] = 2
        merged = run_merge_kernel(machine, gpu_data, cpu_data, orig)
        assert np.all(merged[:2] == 1)
        assert np.all(merged[2:] == 2)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        split=st.integers(0, 64),
    )
    def test_matches_reference_property(self, seed, split):
        """Partition at ``split``: GPU computed the bottom, CPU the top."""
        rng = np.random.default_rng(seed)
        orig = rng.standard_normal(64).astype(np.float32)
        result = rng.standard_normal(64).astype(np.float32)
        gpu_data = orig.copy()
        gpu_data[:split] = result[:split]
        cpu_data = orig.copy()
        cpu_data[split:] = result[split:]
        merged = reference_merge(gpu_data, cpu_data, orig)
        assert np.array_equal(merged, result)


class TestMergeNdrange:
    def test_covers_all_elements(self):
        nd = merge_ndrange(MERGE_LOCAL_SIZE * 3 + 1)
        assert nd.total_items >= MERGE_LOCAL_SIZE * 3 + 1
        assert nd.total_groups == 4

    def test_minimum_one_group(self):
        assert merge_ndrange(1).total_groups == 1

    def test_bounds_check_in_body(self, machine):
        # 5000 elements with 4096-wide groups: the tail group must not
        # touch out-of-range indices.
        orig = np.zeros(5000, dtype=np.float32)
        cpu_data = np.ones(5000, dtype=np.float32)
        merged = run_merge_kernel(machine, orig.copy(), cpu_data, orig)
        assert np.all(merged == 1)


class TestMergeCost:
    def test_bandwidth_bound_on_gpu(self):
        spec = build_merge_kernel(1 << 20, 4)
        from repro.hw.cost import wg_time
        from repro.hw.specs import TESLA_C2070

        per_group = wg_time(spec.cost, TESLA_C2070)
        bytes_per_group = spec.cost.bytes_total
        achieved = bytes_per_group / per_group
        # One slot should stream at a decent fraction of its share.
        assert achieved > 0.5 * TESLA_C2070.slot_bandwidth
