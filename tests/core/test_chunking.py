"""Unit tests for the adaptive chunk heuristic (paper section 5.1)."""

import pytest

from repro.core.chunking import AdaptiveChunker


def make(total=1000, cu=8, initial=0.10, step=0.10):
    return AdaptiveChunker(total, cu, initial_fraction=initial,
                           step_fraction=step)


class TestInitialChunk:
    def test_initial_fraction(self):
        chunker = make()
        # 10% of 1000, rounded up to a multiple of 8 compute units
        assert chunker.next_chunk(1000) == 104

    def test_minimum_is_compute_units(self):
        chunker = make(total=100, initial=0.01)
        assert chunker.next_chunk(100) >= 8

    def test_rounded_to_cu_multiple(self):
        chunker = make(total=1000, cu=8, initial=0.10)
        assert chunker.next_chunk(1000) % 8 == 0

    def test_clamped_to_remaining(self):
        chunker = make()
        assert chunker.next_chunk(5) == 5

    def test_no_work_rejected(self):
        with pytest.raises(ValueError):
            make().next_chunk(0)


class TestAdaptiveGrowth:
    def test_grows_while_average_improves(self):
        chunker = make(total=1000, initial=0.10, step=0.10)
        first = chunker.next_chunk(1000)
        chunker.observe(first, first * 1.0)
        second = chunker.next_chunk(1000)
        assert second > first
        # Better average again: keep growing.
        chunker.observe(second, second * 0.5)
        assert chunker.next_chunk(1000) > second

    def test_stops_growing_when_average_flattens(self):
        chunker = make(total=1000)
        first = chunker.next_chunk(1000)
        chunker.observe(first, first * 1.0)
        second = chunker.next_chunk(1000)
        chunker.observe(second, second * 0.99)  # < 2% improvement
        assert not chunker.still_growing
        assert chunker.next_chunk(1000) == second

    def test_never_exceeds_total(self):
        chunker = make(total=100, initial=0.5, step=0.9)
        chunk = chunker.next_chunk(100)
        chunker.observe(chunk, chunk * 1.0)
        chunker.observe(chunker.next_chunk(100), 1.0)
        assert chunker.next_chunk(100) <= 100

    def test_zero_step_never_grows(self):
        chunker = make(step=0.0)
        first = chunker.next_chunk(1000)
        chunker.observe(first, 0.001)
        chunker.observe(first, 0.0001)
        assert chunker.next_chunk(1000) == first

    def test_first_observation_always_grows(self):
        """Documented §5.1 semantics: the first observe() has no previous
        average to compare with (+inf sentinel), so it always counts as an
        improvement — even for an arbitrarily slow first subkernel."""
        chunker = make(total=1000, initial=0.10, step=0.10)
        first = chunker.next_chunk(1000)
        chunker.observe(first, first * 1e6)  # terrible average
        assert chunker.still_growing
        assert chunker.next_chunk(1000) > first

    def test_first_observation_zero_elapsed(self):
        """avg == 0.0 on the first subkernel must not divide-by-zero or
        flip the heuristic; zero is still an improvement over +inf."""
        chunker = make(total=1000, initial=0.10, step=0.10)
        first = chunker.next_chunk(1000)
        chunker.observe(first, 0.0)
        assert chunker.still_growing
        assert chunker.next_chunk(1000) > first

    def test_epsilon_exact_improvement_settles(self):
        """Growth needs strictly more than the 2% epsilon: an average at
        exactly previous*(1-epsilon) is 'flat' and stops growth."""
        chunker = make(total=10000, cu=1, initial=0.01, step=0.01)
        first = chunker.next_chunk(10000)
        chunker.observe(first, first * 1.0)        # avg = 1.0, grows (first)
        second = chunker.next_chunk(10000)
        chunker.observe(second, second * 0.98)     # exactly epsilon better
        assert not chunker.still_growing
        assert chunker.next_chunk(10000) == second

    def test_just_past_epsilon_keeps_growing(self):
        chunker = make(total=10000, cu=1, initial=0.01, step=0.01)
        first = chunker.next_chunk(10000)
        chunker.observe(first, first * 1.0)
        second = chunker.next_chunk(10000)
        chunker.observe(second, second * 0.9799)   # strictly past epsilon
        assert chunker.still_growing
        assert chunker.next_chunk(10000) > second

    def test_zero_step_first_observation_does_not_grow(self):
        """step_fraction=0 (fig. 18 sweep) disables growth entirely —
        including the optimistic first-observation growth."""
        chunker = make(step=0.0)
        first = chunker.next_chunk(1000)
        assert not chunker.still_growing
        chunker.observe(first, first * 1.0)
        assert chunker.next_chunk(1000) == first
        assert chunker.chunk == first or chunker.chunk <= first

    def test_history_recorded(self):
        chunker = make()
        chunk = chunker.next_chunk(1000)
        chunker.observe(chunk, 1.0)
        assert chunker.history == [(chunk, 1.0 / chunk)]


class TestSmallRanges:
    def test_step_never_rounds_to_zero(self):
        """Regression: tiny total_groups rounded the growth step to 0,
        silently disabling adaptation despite step_fraction > 0."""
        chunker = make(total=3, cu=1, initial=0.34, step=0.1)
        assert chunker.step >= 1
        first = chunker.next_chunk(3)
        chunker.observe(first, first * 1.0)
        assert chunker.still_growing
        assert chunker.chunk > first, "growth must actually move the chunk"

    def test_single_group_range(self):
        chunker = make(total=1, cu=1, initial=0.1, step=0.1)
        assert chunker.step == 1
        assert chunker.next_chunk(1) == 1

    def test_zero_step_fraction_still_means_disabled(self):
        chunker = make(total=3, cu=1, step=0.0)
        assert chunker.step == 0
        assert not chunker.still_growing


class TestValidation:
    def test_bad_total(self):
        with pytest.raises(ValueError):
            AdaptiveChunker(0, 8)

    def test_bad_cu(self):
        with pytest.raises(ValueError):
            AdaptiveChunker(100, 0)

    def test_bad_observation(self):
        chunker = make()
        with pytest.raises(ValueError):
            chunker.observe(0, 1.0)
        with pytest.raises(ValueError):
            chunker.observe(1, -1.0)
