"""Unit tests for the adaptive chunk heuristic (paper section 5.1)."""

import pytest

from repro.core.chunking import AdaptiveChunker


def make(total=1000, cu=8, initial=0.10, step=0.10):
    return AdaptiveChunker(total, cu, initial_fraction=initial,
                           step_fraction=step)


class TestInitialChunk:
    def test_initial_fraction(self):
        chunker = make()
        # 10% of 1000, rounded up to a multiple of 8 compute units
        assert chunker.next_chunk(1000) == 104

    def test_minimum_is_compute_units(self):
        chunker = make(total=100, initial=0.01)
        assert chunker.next_chunk(100) >= 8

    def test_rounded_to_cu_multiple(self):
        chunker = make(total=1000, cu=8, initial=0.10)
        assert chunker.next_chunk(1000) % 8 == 0

    def test_clamped_to_remaining(self):
        chunker = make()
        assert chunker.next_chunk(5) == 5

    def test_no_work_rejected(self):
        with pytest.raises(ValueError):
            make().next_chunk(0)


class TestAdaptiveGrowth:
    def test_grows_while_average_improves(self):
        chunker = make(total=1000, initial=0.10, step=0.10)
        first = chunker.next_chunk(1000)
        chunker.observe(first, first * 1.0)
        second = chunker.next_chunk(1000)
        assert second > first
        # Better average again: keep growing.
        chunker.observe(second, second * 0.5)
        assert chunker.next_chunk(1000) > second

    def test_stops_growing_when_average_flattens(self):
        chunker = make(total=1000)
        first = chunker.next_chunk(1000)
        chunker.observe(first, first * 1.0)
        second = chunker.next_chunk(1000)
        chunker.observe(second, second * 0.99)  # < 2% improvement
        assert not chunker.still_growing
        assert chunker.next_chunk(1000) == second

    def test_never_exceeds_total(self):
        chunker = make(total=100, initial=0.5, step=0.9)
        chunk = chunker.next_chunk(100)
        chunker.observe(chunk, chunk * 1.0)
        chunker.observe(chunker.next_chunk(100), 1.0)
        assert chunker.next_chunk(100) <= 100

    def test_zero_step_never_grows(self):
        chunker = make(step=0.0)
        first = chunker.next_chunk(1000)
        chunker.observe(first, 0.001)
        chunker.observe(first, 0.0001)
        assert chunker.next_chunk(1000) == first

    def test_history_recorded(self):
        chunker = make()
        chunk = chunker.next_chunk(1000)
        chunker.observe(chunk, 1.0)
        assert chunker.history == [(chunk, 1.0 / chunk)]


class TestSmallRanges:
    def test_step_never_rounds_to_zero(self):
        """Regression: tiny total_groups rounded the growth step to 0,
        silently disabling adaptation despite step_fraction > 0."""
        chunker = make(total=3, cu=1, initial=0.34, step=0.1)
        assert chunker.step >= 1
        first = chunker.next_chunk(3)
        chunker.observe(first, first * 1.0)
        assert chunker.still_growing
        assert chunker.chunk > first, "growth must actually move the chunk"

    def test_single_group_range(self):
        chunker = make(total=1, cu=1, initial=0.1, step=0.1)
        assert chunker.step == 1
        assert chunker.next_chunk(1) == 1

    def test_zero_step_fraction_still_means_disabled(self):
        chunker = make(total=3, cu=1, step=0.0)
        assert chunker.step == 0
        assert not chunker.still_growing


class TestValidation:
    def test_bad_total(self):
        with pytest.raises(ValueError):
            AdaptiveChunker(0, 8)

    def test_bad_cu(self):
        with pytest.raises(ValueError):
            AdaptiveChunker(100, 0)

    def test_bad_observation(self):
        chunker = make()
        with pytest.raises(ValueError):
            chunker.observe(0, 1.0)
        with pytest.raises(ValueError):
            chunker.observe(1, -1.0)
