"""Property tests for the fixed-point time base (``repro.sim.timebase``)."""

import math
import random

import pytest

from repro.sim.core import Engine, Event
from repro.sim.timebase import (
    NEGATIVE_SLACK_SECONDS,
    TICKS_PER_US,
    SubMicrosecondResidueError,
    delay_to_ticks,
    from_ticks,
    from_us,
    is_us_aligned,
    ticks_to_us,
    to_ticks,
    to_us,
    us_to_ticks,
)


#: one tick, in seconds: the absolute quantization floor of the clock
_TICK_SECONDS = 1e-6 / TICKS_PER_US


class TestTickRoundTrip:
    def test_round_trip_error_bounded_per_conversion(self):
        """|from_ticks(to_ticks(s)) - s| <= ~max(1 tick, 2 ulp), always.

        Below a microsecond the double is finer than the tick grid, so
        the bound is one tick of *absolute* error (2.2e-22 s); above it
        the tick grid is finer than the double and the bound is the two
        float roundings of the conversions.  Either way the error is
        per-conversion: the integer clock never sums floats, so a
        million events carry a million independent bounded errors
        instead of a compounding drift.  Durations at or above a
        nanosecond keep >= 40 significant tick bits, so their relative
        error also stays below 1e-12.
        """
        rng = random.Random(7)
        for _ in range(5000):
            s = rng.uniform(0.0, 10.0) * 10.0 ** rng.randint(-9, 0)
            y = from_ticks(to_ticks(s))
            assert abs(y - s) <= 2 * _TICK_SECONDS + 2 * math.ulp(s)
            if s >= 1e-9:
                assert abs(y - s) <= 1e-12 * s
        for s in (0.0, 1e-9, 1.5e-7, 0.019999999999999348, 123.456):
            y = from_ticks(to_ticks(s))
            assert abs(y - s) <= 2 * _TICK_SECONDS + 2 * math.ulp(s)

    def test_us_multiples_convert_exactly(self):
        """Canonical microsecond floats snap to exactly ``k << 52`` ticks
        and re-render to the identical float."""
        rng = random.Random(11)
        for _ in range(2000):
            k = rng.randint(0, 10**9)
            s = k / 1e6
            assert is_us_aligned(s)
            assert to_ticks(s) == k * TICKS_PER_US
            assert from_ticks(k * TICKS_PER_US) == s

    def test_aligned_values_round_trip_exactly(self):
        """is_us_aligned(s) implies a bit-exact round trip."""
        rng = random.Random(17)
        for _ in range(2000):
            s = rng.randint(0, 10**12) / 1e6
            assert from_ticks(to_ticks(s)) == s

    def test_summing_aligned_delays_accumulates_zero_error(self):
        """20000 x 1 microsecond is *exactly* 0.02 — the condition_wait
        drift case, fixed structurally."""
        ticks = 0
        one_us = to_ticks(1e-6)
        for _ in range(20000):
            ticks += one_us
        assert from_ticks(ticks) == 0.02

    def test_us_int_round_trip(self):
        rng = random.Random(13)
        for _ in range(2000):
            k = rng.randint(0, 10**12)
            assert to_us(from_us(k)) == k
            assert ticks_to_us(us_to_ticks(k)) == k


class TestStrictQuantization:
    def test_strict_to_us_accepts_aligned(self):
        assert to_us(0.02, strict=True) == 20000
        assert to_us(0.0, strict=True) == 0

    def test_strict_to_us_rejects_residue(self):
        with pytest.raises(SubMicrosecondResidueError):
            to_us(1.5e-7, strict=True)
        with pytest.raises(SubMicrosecondResidueError):
            to_us(0.0200000001234, strict=True)

    def test_ticks_to_us_rounds_half_to_even(self):
        half = TICKS_PER_US // 2
        assert ticks_to_us(4 * TICKS_PER_US + half) == 4
        assert ticks_to_us(5 * TICKS_PER_US + half) == 6
        assert ticks_to_us(4 * TICKS_PER_US + half + 1) == 5

    def test_ticks_to_us_strict_rejects_fraction(self):
        with pytest.raises(SubMicrosecondResidueError):
            ticks_to_us(TICKS_PER_US + 1, strict=True)
        assert ticks_to_us(3 * TICKS_PER_US, strict=True) == 3

    def test_is_us_aligned(self):
        assert is_us_aligned(0.02)
        assert is_us_aligned(0.0)
        assert is_us_aligned(5e-6)
        assert not is_us_aligned(1.5e-7)
        assert not is_us_aligned(0.019999999999999348)


class TestNegativeDeltaGuard:
    """Float subtraction like ``deadline - now`` can land a few ULP below
    zero; the boundary must absorb that without ever accepting a real
    negative delay."""

    def test_tiny_negative_clamps_to_zero(self):
        assert delay_to_ticks(-1e-18) == 0
        assert delay_to_ticks(-0.0) == 0
        assert delay_to_ticks(-NEGATIVE_SLACK_SECONDS) == 0

    def test_real_negative_raises(self):
        with pytest.raises(ValueError, match="cannot schedule into the past"):
            delay_to_ticks(-0.5)
        with pytest.raises(ValueError):
            delay_to_ticks(-1e-3)

    def test_engine_timeout_tiny_negative_fires_now(self):
        engine = Engine()
        done = engine.timeout(-1e-18, value="ok")
        assert engine.run(done) == "ok"
        assert engine.now == 0.0

    def test_engine_timeout_real_negative_raises(self):
        engine = Engine()
        with pytest.raises(ValueError):
            engine.timeout(-0.5)

    def test_engine_schedule_tiny_negative_ok(self):
        engine = Engine()
        event = Event(engine)
        event.succeed(delay=-1e-18)
        engine.run()
        assert event.processed

    def test_engine_schedule_real_negative_raises(self):
        engine = Engine()
        event = Event(engine)
        with pytest.raises(ValueError):
            event.succeed(delay=-0.5)


class TestEngineClockExactness:
    def test_now_is_tick_derived(self):
        engine = Engine()
        for _ in range(1000):
            engine.run(engine.timeout(1e-6))
        assert engine.now == 0.001
        assert engine.now_ticks == 1000 * TICKS_PER_US

    def test_run_for_advances_exactly(self):
        engine = Engine()
        for _ in range(7):
            engine.run_for(3e-6)
        assert engine.now == 21e-6

    def test_arbitrary_cost_delays_keep_residue(self):
        """Sub-microsecond cost-model durations are not quantized away:
        the clock lands within one tick of the exact delay (NOT on the
        microsecond grid) and renders through the single from_ticks
        boundary."""
        engine = Engine()
        delay = 1 / 3 * 1e-6
        engine.run(engine.timeout(delay))
        assert engine.now == from_ticks(to_ticks(delay))
        assert abs(engine.now - delay) <= 2 * _TICK_SECONDS
        assert not is_us_aligned(engine.now)
