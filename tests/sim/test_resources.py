"""Unit tests for resources and channels."""

import pytest

from repro.sim.core import SimError
from repro.sim.resources import Channel, Resource


def worker(engine, resource, log, name, duration):
    request = resource.request()
    yield request
    log.append((engine.now, name, "start"))
    yield engine.timeout(duration)
    resource.release(request)
    log.append((engine.now, name, "end"))


class TestResource:
    def test_capacity_one_serializes(self, engine):
        resource = Resource(engine, capacity=1)
        log = []
        engine.process(worker(engine, resource, log, "a", 2))
        engine.process(worker(engine, resource, log, "b", 3))
        engine.run()
        assert log == [
            (0, "a", "start"), (2, "a", "end"),
            (2, "b", "start"), (5, "b", "end"),
        ]

    def test_capacity_two_overlaps(self, engine):
        resource = Resource(engine, capacity=2)
        log = []
        engine.process(worker(engine, resource, log, "a", 2))
        engine.process(worker(engine, resource, log, "b", 3))
        engine.run()
        assert (0, "b", "start") in log
        assert engine.now == 3

    def test_fifo_grant_order(self, engine):
        resource = Resource(engine, capacity=1)
        log = []
        for name in "abc":
            engine.process(worker(engine, resource, log, name, 1))
        engine.run()
        starts = [entry[1] for entry in log if entry[2] == "start"]
        assert starts == ["a", "b", "c"]

    def test_counters(self, engine):
        resource = Resource(engine, capacity=1)
        first = resource.request()
        second = resource.request()
        assert resource.in_use == 1
        assert resource.queue_length == 1
        resource.release(first)
        assert second.triggered

    def test_release_ungranted_request_cancels(self, engine):
        resource = Resource(engine, capacity=1)
        first = resource.request()
        second = resource.request()
        resource.release(second)  # never granted: just cancelled
        assert resource.queue_length == 0
        resource.release(first)
        assert resource.in_use == 0

    def test_release_unknown_raises(self, engine):
        r1 = Resource(engine, capacity=1)
        r2 = Resource(engine, capacity=1)
        request = r1.request()
        with pytest.raises(SimError):
            r2.release(request)

    def test_bad_capacity(self, engine):
        with pytest.raises(ValueError):
            Resource(engine, capacity=0)


class TestChannel:
    def test_put_then_get(self, engine):
        channel = Channel(engine)
        channel.put("x")
        assert engine.run(channel.get()) == "x"

    def test_get_blocks_until_put(self, engine):
        channel = Channel(engine)
        results = []

        def consumer():
            item = yield channel.get()
            results.append((engine.now, item))

        engine.process(consumer())

        def producer():
            yield engine.timeout(2)
            channel.put("late")

        engine.process(producer())
        engine.run()
        assert results == [(2, "late")]

    def test_fifo_ordering(self, engine):
        channel = Channel(engine)
        for item in (1, 2, 3):
            channel.put(item)
        got = [engine.run(channel.get()) for _ in range(3)]
        assert got == [1, 2, 3]

    def test_len_and_peek(self, engine):
        channel = Channel(engine)
        assert len(channel) == 0
        assert channel.peek() is None
        channel.put("a")
        assert len(channel) == 1
        assert channel.peek() == "a"

    def test_close_releases_waiters_with_none(self, engine):
        channel = Channel(engine)
        get_event = channel.get()
        channel.close()
        assert engine.run(get_event) is None

    def test_get_after_close_returns_none(self, engine):
        channel = Channel(engine)
        channel.close()
        assert engine.run(channel.get()) is None

    def test_put_after_close_raises(self, engine):
        channel = Channel(engine)
        channel.close()
        with pytest.raises(SimError):
            channel.put("x")

    def test_double_close_is_noop(self, engine):
        channel = Channel(engine)
        channel.close()
        channel.close()
        assert channel.closed

    def test_default_close_is_ambiguous_with_queued_none(self, engine):
        """The documented default: a queued ``None`` payload and the close
        resolution are indistinguishable (existing callers rely on it)."""
        channel = Channel(engine)
        channel.put(None)
        queued = engine.run(channel.get())
        channel.close()
        closed = engine.run(channel.get())
        assert queued is None and closed is None  # can't tell them apart

    def test_closed_sentinel_distinguishes_shutdown_from_payload(self, engine):
        channel = Channel(engine, close_value=Channel.CLOSED)
        channel.put(None)  # a legitimate None payload
        assert engine.run(channel.get()) is None
        channel.close()
        assert engine.run(channel.get()) is Channel.CLOSED

    def test_closed_sentinel_delivered_after_queued_items_drain(self, engine):
        channel = Channel(engine, close_value=Channel.CLOSED)
        channel.put("job")
        channel.close()
        assert engine.run(channel.get()) == "job"
        assert engine.run(channel.get()) is Channel.CLOSED

    def test_closed_sentinel_wakes_pending_getters(self, engine):
        channel = Channel(engine, close_value=Channel.CLOSED)
        get_event = channel.get()
        channel.close()
        assert engine.run(get_event) is Channel.CLOSED

    def test_putting_the_sentinel_is_rejected(self, engine):
        channel = Channel(engine)
        with pytest.raises(SimError):
            channel.put(Channel.CLOSED)
