"""Unit tests for the discrete-event engine core."""

import pytest

from repro.sim.core import Interrupt, SimDeadlockError, SimError


class TestEvent:
    def test_initially_pending(self, engine):
        event = engine.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_carries_value(self, engine):
        event = engine.event()
        event.succeed(42)
        assert event.triggered
        assert event.value == 42
        assert event.ok

    def test_value_before_trigger_raises(self, engine):
        event = engine.event()
        with pytest.raises(SimError):
            _ = event.value

    def test_double_trigger_raises(self, engine):
        event = engine.event()
        event.succeed()
        with pytest.raises(SimError):
            event.succeed()

    def test_fail_requires_exception(self, engine):
        event = engine.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_callback_after_processing_runs_immediately(self, engine):
        event = engine.event()
        event.succeed(1)
        engine.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == [1]

    def test_delayed_succeed(self, engine):
        event = engine.event()
        event.succeed("later", delay=5.0)
        engine.run(event)
        assert engine.now == 5.0


class TestTimeout:
    def test_advances_clock(self, engine):
        timeout = engine.timeout(3.5)
        engine.run(timeout)
        assert engine.now == pytest.approx(3.5)

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.timeout(-1)

    def test_carries_value(self, engine):
        timeout = engine.timeout(1.0, value="tick")
        assert engine.run(timeout) == "tick"

    def test_zero_delay_fires_now(self, engine):
        timeout = engine.timeout(0)
        engine.run(timeout)
        assert engine.now == 0.0


class TestProcess:
    def test_return_value(self, engine):
        def proc():
            yield engine.timeout(1)
            return "done"

        assert engine.run(engine.process(proc())) == "done"

    def test_sequencing(self, engine):
        log = []

        def proc(name, delay):
            yield engine.timeout(delay)
            log.append((engine.now, name))

        engine.process(proc("b", 2))
        engine.process(proc("a", 1))
        engine.run()
        assert log == [(1, "a"), (2, "b")]

    def test_wait_on_event_value(self, engine):
        event = engine.event()

        def waiter():
            value = yield event
            return value * 2

        process = engine.process(waiter())

        def firer():
            yield engine.timeout(1)
            event.succeed(21)

        engine.process(firer())
        assert engine.run(process) == 42

    def test_process_is_waitable_event(self, engine):
        def inner():
            yield engine.timeout(2)
            return "inner"

        def outer():
            result = yield engine.process(inner())
            return result + "-outer"

        assert engine.run(engine.process(outer())) == "inner-outer"

    def test_failed_event_raises_inside_process(self, engine):
        event = engine.event()

        def waiter():
            try:
                yield event
            except RuntimeError as exc:
                return f"caught:{exc}"

        process = engine.process(waiter())
        event.fail(RuntimeError("boom"))
        assert engine.run(process) == "caught:boom"

    def test_uncaught_exception_propagates(self, engine):
        def bad():
            yield engine.timeout(1)
            raise ValueError("kaput")

        process = engine.process(bad())
        with pytest.raises(ValueError, match="kaput"):
            engine.run(process)

    def test_yield_non_event_fails_process(self, engine):
        def bad():
            yield 42

        process = engine.process(bad())
        with pytest.raises(SimError):
            engine.run(process)

    def test_interrupt_delivers_cause(self, engine):
        def sleeper():
            try:
                yield engine.timeout(100)
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause)

        process = engine.process(sleeper())

        def killer():
            yield engine.timeout(1)
            process.interrupt("reason")

        engine.process(killer())
        assert engine.run(process) == ("interrupted", "reason")
        assert engine.now == pytest.approx(1.0)

    def test_interrupt_finished_process_raises(self, engine):
        def quick():
            yield engine.timeout(0)

        process = engine.process(quick())
        engine.run(process)
        with pytest.raises(SimError):
            process.interrupt()

    def test_uncaught_interrupt_terminates_cleanly(self, engine):
        def sleeper():
            yield engine.timeout(100)

        process = engine.process(sleeper())

        def killer():
            yield engine.timeout(1)
            process.interrupt()

        engine.process(killer())
        engine.run(process)
        assert process.triggered

    def test_stale_wakeup_after_interrupt_is_ignored(self, engine):
        """The original timeout fires after an interrupt redirected the
        process; the late wakeup must not resume it twice."""
        log = []

        def sleeper():
            try:
                yield engine.timeout(5)
            except Interrupt:
                pass
            yield engine.timeout(10)
            log.append(engine.now)

        process = engine.process(sleeper())

        def killer():
            yield engine.timeout(1)
            process.interrupt()

        engine.process(killer())
        engine.run()
        assert log == [11]

    def test_is_alive(self, engine):
        def proc():
            yield engine.timeout(1)

        process = engine.process(proc())
        assert process.is_alive
        engine.run(process)
        assert not process.is_alive


class TestConditions:
    def test_all_of_collects_values(self, engine):
        t1 = engine.timeout(1, value="a")
        t2 = engine.timeout(2, value="b")
        values = engine.run(engine.all_of([t1, t2]))
        assert values == ["a", "b"]
        assert engine.now == 2

    def test_any_of_first_value(self, engine):
        t1 = engine.timeout(5, value="slow")
        t2 = engine.timeout(1, value="fast")
        value = engine.run(engine.any_of([t1, t2]))
        assert value == "fast"
        assert engine.now == 1

    def test_all_of_empty_is_immediate(self, engine):
        assert engine.run(engine.all_of([])) == []

    def test_any_of_with_already_triggered(self, engine):
        event = engine.event()
        event.succeed("now")
        assert engine.run(engine.any_of([event, engine.timeout(10)])) == "now"

    def test_late_child_after_anyof_triggered_is_harmless(self, engine):
        gate_event = engine.event()
        fast = engine.timeout(1)
        combined = engine.any_of([fast, gate_event])
        engine.run(combined)
        gate_event.succeed("late")
        engine.run()
        assert combined.ok


class TestEngine:
    def test_run_until_time(self, engine):
        engine.timeout(1)
        engine.timeout(10)
        engine.run(5.0)
        assert engine.now == 5.0

    def test_run_drains_everything(self, engine):
        engine.timeout(1)
        engine.timeout(2)
        engine.run()
        assert engine.now == 2

    def test_deadlock_detection(self, engine):
        event = engine.event()
        with pytest.raises(SimDeadlockError):
            engine.run(event)

    def test_step_requires_events(self, engine):
        with pytest.raises(SimDeadlockError):
            engine.step()

    def test_peek(self, engine):
        assert engine.peek() == float("inf")
        engine.timeout(4)
        assert engine.peek() == 4

    def test_fifo_order_at_same_instant(self, engine):
        log = []
        for name in "abc":
            engine.timeout(1).add_callback(lambda _e, n=name: log.append(n))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_schedule_into_past_rejected(self, engine):
        event = engine.event()
        with pytest.raises(ValueError):
            engine._schedule(event, delay=-0.5)
