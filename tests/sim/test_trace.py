"""Unit tests for the tracer."""

from repro.sim.trace import TraceRecord, Tracer


class TestTracer:
    def test_records_accumulate_in_order(self):
        tracer = Tracer()
        tracer.record(1.0, "a", {"k": 1})
        tracer.record(2.0, "b", {"k": 2})
        assert len(tracer) == 2
        assert [r.time for r in tracer] == [1.0, 2.0]

    def test_by_category(self):
        tracer = Tracer()
        tracer.record(0.0, "x", {})
        tracer.record(1.0, "y", {})
        tracer.record(2.0, "x", {})
        assert len(tracer.by_category("x")) == 2

    def test_categories_preserve_first_seen_order(self):
        tracer = Tracer()
        for category in ("b", "a", "b", "c"):
            tracer.record(0.0, category, {})
        assert tracer.categories() == ["b", "a", "c"]

    def test_payload_copied(self):
        tracer = Tracer()
        payload = {"k": 1}
        tracer.record(0.0, "x", payload)
        payload["k"] = 99
        assert tracer.records[0]["k"] == 1

    def test_clear(self):
        tracer = Tracer()
        tracer.record(0.0, "x", {})
        tracer.clear()
        assert len(tracer) == 0

    def test_spans_pairing(self):
        tracer = Tracer()
        tracer.record(1.0, "start", {"id": "a"})
        tracer.record(2.0, "start", {"id": "b"})
        tracer.record(3.0, "end", {"id": "a"})
        tracer.record(4.0, "end", {"id": "b"})
        spans = tracer.spans("start", "end", "id")
        assert [(s.time, e.time) for s, e in spans] == [(1.0, 3.0), (2.0, 4.0)]

    def test_spans_skip_records_without_key(self):
        tracer = Tracer()
        tracer.record(1.0, "start", {"id": "a"})
        tracer.record(1.5, "start", {"other": 1})
        tracer.record(2.0, "end", {"id": "a"})
        assert len(tracer.spans("start", "end", "id")) == 1

    def test_record_getitem(self):
        record = TraceRecord(0.0, "x", {"key": "value"})
        assert record["key"] == "value"
