"""Same-instant phase-drain ordering: the golden contracts.

Events scheduled for the *same* tick instant drain in :class:`Phase`
order — ``COMPLETE < WAKE < LAUNCH < TRACE`` — and FIFO within a phase.
Interleave jitter may shuffle ties only *inside* a phase; the phase
boundary itself is part of the integer heap key and is never crossed.
"""

import random

from repro.sim.core import Engine, Event, Phase


class CompleteEvent(Event):
    phase = Phase.COMPLETE


class LaunchEvent(Event):
    phase = Phase.LAUNCH


class TraceEvent(Event):
    phase = Phase.TRACE


_KINDS = {
    "C": CompleteEvent,
    "W": Event,  # default phase is WAKE
    "L": LaunchEvent,
    "T": TraceEvent,
}


def _drain_order(engine, spec, delay):
    """Trigger one event per ``spec`` entry (kind letter + index), all at
    the same instant, and return the order their callbacks ran."""
    order = []
    for label in spec:
        event = _KINDS[label[0]](engine, name=label)
        event.add_callback(lambda e: order.append(e.name))
        event.succeed(delay=delay)
    engine.run()
    return order


class TestGoldenDrainOrder:
    # deliberately interleaved creation order
    SPEC = ["T0", "W0", "L0", "C0", "W1", "T1", "C1", "L1", "W2", "C2"]
    GOLDEN = ["C0", "C1", "C2", "W0", "W1", "W2", "L0", "L1", "T0", "T1"]

    def test_future_instant_drains_complete_wake_launch_trace(self):
        assert _drain_order(Engine(), self.SPEC, delay=5e-6) == self.GOLDEN

    def test_current_instant_drains_in_phase_order(self):
        """delay=0 routes WAKE events through the immediate FIFO and the
        other phases through the calendar; the merged drain must still
        respect the phase order and FIFO within each phase."""
        assert _drain_order(Engine(), self.SPEC, delay=0.0) == self.GOLDEN

    def test_distinct_instants_trump_phases(self):
        """A TRACE event at an earlier tick precedes a COMPLETE event at
        a later tick: phases order only *same-instant* ties."""
        engine = Engine()
        order = []
        late = CompleteEvent(engine, name="late-complete")
        late.add_callback(lambda e: order.append(e.name))
        late.succeed(delay=2e-6)
        early = TraceEvent(engine, name="early-trace")
        early.add_callback(lambda e: order.append(e.name))
        early.succeed(delay=1e-6)
        engine.run()
        assert order == ["early-trace", "late-complete"]


class TestJitterStaysWithinPhase:
    SPEC = ["C0", "C1", "C2", "W0", "W1", "W2", "W3",
            "L0", "L1", "T0", "T1", "T2"]

    def test_phase_blocks_survive_any_jitter_seed(self):
        for seed in range(50):
            engine = Engine()
            engine.set_interleave_jitter(random.Random(seed))
            order = _drain_order(engine, self.SPEC, delay=3e-6)
            kinds = [label[0] for label in order]
            # contiguous phase blocks, in ascending phase order
            assert kinds == (["C"] * 3 + ["W"] * 4 + ["L"] * 2 + ["T"] * 3)
            assert sorted(order) == sorted(self.SPEC)

    def test_some_seed_shuffles_within_a_phase(self):
        """Jitter must actually perturb same-phase ties (otherwise the
        fuzzer's interleave axis is dead)."""
        shuffled = False
        for seed in range(50):
            engine = Engine()
            engine.set_interleave_jitter(random.Random(seed))
            order = _drain_order(engine, self.SPEC, delay=3e-6)
            if [o for o in order if o[0] == "W"] != ["W0", "W1", "W2", "W3"]:
                shuffled = True
                break
        assert shuffled

    def test_jitter_seed_is_deterministic(self):
        runs = []
        for _ in range(2):
            engine = Engine()
            engine.set_interleave_jitter(random.Random(1234))
            runs.append(_drain_order(engine, self.SPEC, delay=3e-6))
        assert runs[0] == runs[1]


class TestFuzzerAxis:
    def test_25_seeds_zero_violations(self):
        """The schedule-space fuzzer (which exercises jittered drains,
        faults and corruption) must stay violation-free on the
        phase-ordered queue."""
        from repro.check.fuzzer import ScheduleFuzzer, run_config

        fuzzer = ScheduleFuzzer()
        for seed in range(25):
            result = run_config(fuzzer.config(seed))
            assert not result.violations, (
                f"seed {seed} violations: {result.violations}"
            )


class TestTwoDeviceGoldenOrder:
    """The observable two-device event order for a pinned small run.

    This is the cross-layer golden: if a queue change reorders
    same-instant events (or quantization moves a microsecond-aligned
    instant), the traced category sequence or the aligned subset shifts
    and this test fails."""

    GOLDEN_CATEGORIES = [
        "buffer_write", "cmd_start", "cmd_start", "buffer_write", "cmd_end",
        "cmd_start", "buffer_write", "kernel_begin", "pool_miss", "pool_miss",
        "cmd_end", "cmd_start", "cmd_end", "cmd_end", "cmd_start", "cmd_end",
        "cmd_start", "cmd_end", "cmd_start", "cmd_end", "cmd_start",
        "subkernel_launch", "cmd_start", "cmd_end", "cmd_start", "cmd_end",
        "cmd_start", "status_delivery", "cmd_end", "cmd_end", "commit",
        "kernel_end", "cmd_start", "cmd_end", "buffer_read", "cmd_start",
        "cmd_end", "cmd_start", "cmd_end", "cmd_start", "cmd_end",
        "cmd_start", "cmd_end", "cmd_start", "cmd_end", "cmd_start",
        "cmd_end", "cmd_start", "cmd_end",
    ]
    #: the subset of records that land on exact-microsecond instants
    GOLDEN_ALIGNED = ["buffer_write", "kernel_begin",
                      "pool_miss", "pool_miss"]

    def _run(self):
        from repro.core.config import FluidiCLConfig
        from repro.core.runtime import FluidiCLRuntime
        from repro.hw.machine import build_machine
        from repro.polybench.suite import make_app

        machine = build_machine(trace=True)
        config = FluidiCLConfig(initial_chunk_fraction=0.25,
                                chunk_step_fraction=0.0)
        runtime = FluidiCLRuntime(machine, config=config)
        app = make_app("gesummv", "test", size=64)
        app.execute(runtime, check=True)
        runtime.drain()
        return machine

    def test_category_sequence_matches_golden(self):
        machine = self._run()
        assert ([r.category for r in machine.tracer.records]
                == self.GOLDEN_CATEGORIES)

    def test_us_aligned_subset_matches_golden(self):
        from repro.sim.timebase import is_us_aligned

        machine = self._run()
        aligned = [r.category for r in machine.tracer.records
                   if is_us_aligned(r.time)]
        assert aligned == self.GOLDEN_ALIGNED

    def test_trace_times_are_monotonic(self):
        machine = self._run()
        times = [r.time for r in machine.tracer.records]
        assert all(a <= b for a, b in zip(times, times[1:]))
