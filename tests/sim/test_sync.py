"""Unit tests for Gate and Latch."""

import pytest

from repro.sim.sync import Gate, Latch


class TestGate:
    def test_fire_wakes_all_waiters(self, engine):
        gate = Gate(engine)
        waits = [gate.wait(), gate.wait()]
        gate.fire(7)
        values = [engine.run(w) for w in waits]
        assert values == [7, 7]
        assert gate.value == 7

    def test_version_increments(self, engine):
        gate = Gate(engine, initial=0)
        assert gate.version == 0
        gate.fire(1)
        gate.fire(2)
        assert gate.version == 2

    def test_wait_after_version_immediate(self, engine):
        gate = Gate(engine)
        gate.fire("x")
        wait = gate.wait(after_version=0)
        assert wait.triggered
        assert engine.run(wait) == "x"

    def test_wait_after_current_version_blocks(self, engine):
        gate = Gate(engine)
        gate.fire("x")
        wait = gate.wait(after_version=gate.version)
        assert not wait.triggered
        gate.fire("y")
        assert engine.run(wait) == "y"

    def test_waiters_cleared_after_fire(self, engine):
        gate = Gate(engine)
        gate.wait()
        gate.fire(1)
        # Firing again must not retrigger the already-fired waiter.
        gate.fire(2)
        engine.run()


class TestLatch:
    def test_counts_down_to_done(self, engine):
        latch = Latch(engine, 2)
        assert not latch.done.triggered
        latch.count_down()
        assert not latch.done.triggered
        latch.count_down()
        assert latch.done.triggered

    def test_zero_count_immediately_done(self, engine):
        latch = Latch(engine, 0)
        assert latch.done.triggered

    def test_overshoot_ignored(self, engine):
        latch = Latch(engine, 1)
        latch.count_down()
        latch.count_down()
        assert latch.remaining <= 0

    def test_negative_count_rejected(self, engine):
        with pytest.raises(ValueError):
            Latch(engine, -1)

    def test_bulk_count_down(self, engine):
        latch = Latch(engine, 5)
        latch.count_down(5)
        assert latch.done.triggered
