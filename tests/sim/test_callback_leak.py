"""Regression tests: resolved conditions must detach from pending children.

The §5.3 version-wait loop in :class:`repro.core.scheduler.CpuScheduler`
builds a fresh ``any_of([gate.wait(), gpu_done])`` every iteration against
the *same* long-lived ``gpu_done`` event.  Each ``AnyOf`` registers a
callback on every child; before the fix, the registrations on the losing
child were never removed, so ``gpu_done.callbacks`` grew by one entry per
iteration — unbounded memory and, worse, O(iterations) callback scans when
``gpu_done`` finally fired.
"""

import pytest

from repro.sim.core import Engine, Event
from repro.sim.sync import Gate


def _stale_callbacks(event: Event) -> int:
    return len(event.callbacks) if event.callbacks is not None else 0


class TestConditionDetach:
    def test_any_of_loop_does_not_grow_longlived_event_callbacks(self):
        """The §5.3 wait-loop shape: callbacks on gpu_done stay bounded."""
        engine = Engine()
        gpu_done = engine.event("gpu_done")
        gate = Gate(engine, name="cpuver")
        iterations = 500

        def firer():
            for version in range(iterations):
                yield engine.timeout(1e-6)
                gate.fire(version)

        def waiter():
            for _ in range(iterations):
                yield engine.any_of([gate.wait(), gpu_done])

        engine.process(firer())
        engine.process(waiter())
        engine.run()

        # Every any_of resolved via the gate; each must have detached from
        # gpu_done.  Pre-fix this was == iterations.
        assert _stale_callbacks(gpu_done) <= 1

    def test_any_of_detaches_on_resolution(self):
        engine = Engine()
        slow = engine.event("slow")
        fast = engine.timeout(1.0, value="fast")
        condition = engine.any_of([fast, slow])
        assert _stale_callbacks(slow) == 1
        assert engine.run(condition) == "fast"
        assert _stale_callbacks(slow) == 0
        # the loser can still fire normally afterwards
        slow.succeed("late")
        engine.run()
        assert slow.processed

    def test_any_of_detaches_on_child_failure(self):
        engine = Engine()
        engine.allow_orphan_failures = True
        pending = engine.event("pending")
        failing = engine.event("failing")
        condition = engine.any_of([failing, pending])
        failing.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError):
            engine.run(condition)
        assert _stale_callbacks(pending) == 0

    def test_all_of_detaches_on_child_failure(self):
        engine = Engine()
        engine.allow_orphan_failures = True
        pending = engine.event("pending")
        failing = engine.event("failing")
        condition = engine.all_of([failing, pending])
        failing.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError):
            engine.run(condition)
        # the all_of failed; it must no longer hang off the other child
        assert _stale_callbacks(pending) == 0

    def test_condition_skips_registration_once_resolved(self):
        """A processed child resolves the AnyOf during construction; later
        children must not be registered on at all."""
        engine = Engine()
        done = engine.event("done").succeed("now")
        engine.run()
        assert done.processed
        longlived = engine.event("longlived")
        condition = engine.any_of([done, longlived])
        engine.run()
        assert condition.value == "now"
        assert _stale_callbacks(longlived) == 0


class TestRemoveCallback:
    def test_remove_registered_callback(self):
        engine = Engine()
        event = engine.event()
        calls = []
        event.add_callback(calls.append)
        event.remove_callback(calls.append)
        event.succeed("x")
        engine.run()
        assert calls == []

    def test_remove_is_noop_when_absent_or_processed(self):
        engine = Engine()
        event = engine.event()
        event.remove_callback(lambda e: None)  # never registered
        event.succeed()
        engine.run()
        assert event.processed
        event.remove_callback(lambda e: None)  # callbacks already None

    def test_remove_one_occurrence_only(self):
        engine = Engine()
        event = engine.event()
        calls = []
        event.add_callback(calls.append)
        event.add_callback(calls.append)
        event.remove_callback(calls.append)
        event.succeed("x")
        engine.run()
        assert len(calls) == 1
