"""Sanity checks tying each benchmark's cost model to its actual math.

The analytic costs drive all timing; if a kernel's declared FLOPs drift
from the operation count its NumPy body performs, every figure lies.
These tests pin total modeled work to closed-form operation counts.
"""

import numpy as np
import pytest

from repro.polybench.bicg import bicg_kernel1, bicg_kernel2, ROWS_PER_GROUP as BICG_R
from repro.polybench.corr import corr_kernel, corr_kernel_cpu_tuned, TILE as CORR_TILE
from repro.polybench.gemm import gemm_kernel
from repro.polybench.gesummv import gesummv_kernel, ROWS_PER_GROUP as GES_R
from repro.polybench.syr2k import syr2k_kernel, TILE as S2_TILE
from repro.polybench.syrk import gpu_compute_efficiency, syrk_kernel, TILE as S_TILE
from repro.polybench.twomm import TILE as MM_TILE, mm1_kernel, mm2_kernel

N = 512


def total_flops(spec, groups):
    return spec.cost.flops * groups


class TestFlopAccounting:
    def test_gemm_total_flops(self):
        spec = gemm_kernel(N)
        groups = (N // MM_TILE) ** 2
        assert total_flops(spec, groups) == pytest.approx(2 * N**3)

    def test_2mm_each_kernel_is_one_matmul(self):
        groups = (N // MM_TILE) ** 2
        assert total_flops(mm1_kernel(N), groups) == pytest.approx(2 * N**3)
        assert total_flops(mm2_kernel(N), groups) == pytest.approx(2 * N**3)

    def test_syrk_total_flops(self):
        spec = syrk_kernel(N)
        groups = (N // S_TILE) ** 2
        assert total_flops(spec, groups) == pytest.approx(2 * N**3)

    def test_syr2k_is_twice_syrk(self):
        syrk_total = total_flops(syrk_kernel(N), (N // S_TILE) ** 2)
        syr2k_total = total_flops(syr2k_kernel(N), (N // S2_TILE) ** 2)
        assert syr2k_total == pytest.approx(2 * syrk_total)

    def test_bicg_matvec_flops(self):
        groups = N // BICG_R
        assert total_flops(bicg_kernel1(N), groups) == pytest.approx(2 * N**2)
        assert total_flops(bicg_kernel2(N), groups) == pytest.approx(2 * N**2)

    def test_gesummv_two_matvecs(self):
        spec = gesummv_kernel(N)
        groups = N // GES_R
        assert total_flops(spec, groups) == pytest.approx(4 * N**2)

    def test_corr_matmul_flops(self):
        spec = corr_kernel(N)
        groups = (N // CORR_TILE) ** 2
        assert total_flops(spec, groups) == pytest.approx(2 * N**3)


class TestByteAccounting:
    @pytest.mark.parametrize("factory,groups_of", [
        (gemm_kernel, lambda n: (n // MM_TILE) ** 2),
        (syrk_kernel, lambda n: (n // S_TILE) ** 2),
        (bicg_kernel1, lambda n: n // BICG_R),
        (gesummv_kernel, lambda n: n // GES_R),
    ])
    def test_reads_at_least_the_streamed_operands(self, factory, groups_of):
        spec = factory(N)
        total_read = spec.cost.bytes_read * groups_of(N)
        # Each kernel streams at least one full N x N float32 matrix.
        assert total_read >= N * N * 4

    def test_writes_positive(self):
        for spec in (gemm_kernel(N), syrk_kernel(N), bicg_kernel1(N)):
            assert spec.cost.bytes_written > 0


class TestAffinityCalibration:
    """The relative device speeds each benchmark was calibrated to."""

    def _whole_kernel_seconds(self, spec, groups, device_spec):
        from repro.hw.cost import wg_time

        waves = -(-groups // device_spec.concurrent_workgroups)
        return waves * wg_time(spec.cost, device_spec)

    def test_gemm_gpu_dominant(self):
        from repro.hw.specs import TESLA_C2070, XEON_W3550

        groups = (N // MM_TILE) ** 2
        gpu = self._whole_kernel_seconds(gemm_kernel(N), groups, TESLA_C2070)
        cpu = self._whole_kernel_seconds(gemm_kernel(N), groups, XEON_W3550)
        assert cpu / gpu > 4

    def test_gesummv_cpu_dominant(self):
        from repro.hw.specs import TESLA_C2070, XEON_W3550

        groups = N // GES_R
        gpu = self._whole_kernel_seconds(gesummv_kernel(N), groups, TESLA_C2070)
        cpu = self._whole_kernel_seconds(gesummv_kernel(N), groups, XEON_W3550)
        assert gpu / cpu > 2

    def test_bicg_kernels_oppose(self):
        from repro.hw.specs import TESLA_C2070, XEON_W3550

        groups = N // BICG_R
        k1_gpu = self._whole_kernel_seconds(bicg_kernel1(N), groups, TESLA_C2070)
        k1_cpu = self._whole_kernel_seconds(bicg_kernel1(N), groups, XEON_W3550)
        k2_gpu = self._whole_kernel_seconds(bicg_kernel2(N), groups, TESLA_C2070)
        k2_cpu = self._whole_kernel_seconds(bicg_kernel2(N), groups, XEON_W3550)
        assert k1_gpu < k1_cpu
        assert k2_cpu < k2_gpu

    def test_syrk_balanced_at_small_and_cpu_lean_at_large(self):
        from repro.hw.specs import TESLA_C2070, XEON_W3550

        def ratio(n):
            spec = syrk_kernel(n)
            groups = (n // S_TILE) ** 2
            gpu = self._whole_kernel_seconds(spec, groups, TESLA_C2070)
            cpu = self._whole_kernel_seconds(spec, groups, XEON_W3550)
            return cpu / gpu

        assert 0.9 < ratio(768) < 2.0      # same performance class
        assert ratio(2048) < ratio(768)    # CPU relatively better when big

    def test_syrk_gpu_efficiency_decays_with_size(self):
        assert gpu_compute_efficiency(2048) < gpu_compute_efficiency(768)

    def test_corr_tuned_cpu_kernel_is_faster_on_cpu(self):
        from repro.hw.cost import wg_time
        from repro.hw.specs import XEON_W3550

        base = wg_time(corr_kernel(N).cost, XEON_W3550)
        tuned = wg_time(corr_kernel_cpu_tuned(N).cost, XEON_W3550)
        assert tuned < base / 3

    def test_tuned_corr_same_signature(self):
        base = corr_kernel(N)
        tuned = corr_kernel_cpu_tuned(N)
        assert base.name == tuned.name
        assert [a.name for a in base.args] == [a.name for a in tuned.args]
        assert tuned.version != base.version


class TestBodiesMatchCosts:
    def test_gemm_body_computes_declared_tile(self):
        """The body must do the work the cost model charges for."""
        from repro.kernels.dsl import WorkGroupContext

        spec = gemm_kernel(64)
        a = np.random.default_rng(0).standard_normal((64, 64)).astype(np.float32)
        b = np.random.default_rng(1).standard_normal((64, 64)).astype(np.float32)
        c = np.zeros((64, 64), dtype=np.float32)
        ctx = WorkGroupContext(
            (1, 0), (2, 2), (32, 32),
            {"A": a, "B": b, "C": c, "alpha": 1.0, "beta": 0.0},
        )
        spec.body(ctx)
        expected = a[0:32] @ b[:, 32:64]
        assert np.allclose(c[0:32, 32:64], expected, atol=1e-4)
        assert np.all(c[32:, :] == 0)
