"""The big integration matrix: every app on every runtime, test scale."""

import numpy as np
import pytest

from repro.baselines.starpu import SoclRuntime
from repro.baselines.static_partition import StaticPartitionRuntime
from repro.core.runtime import FluidiCLRuntime
from repro.hw.machine import build_machine
from repro.hw.specs import DeviceKind
from repro.ocl.runtime import SingleDeviceRuntime
from repro.polybench import EXTENDED_SUITE, make_app

RUNTIME_FACTORIES = {
    "gpu-only": lambda m: SingleDeviceRuntime(m, DeviceKind.GPU),
    "cpu-only": lambda m: SingleDeviceRuntime(m, DeviceKind.CPU),
    "fluidicl": lambda m: FluidiCLRuntime(m),
    "static-50": lambda m: StaticPartitionRuntime(m, 0.5),
    "socl-eager": lambda m: SoclRuntime(m, "eager"),
}


@pytest.mark.parametrize("app_name", EXTENDED_SUITE)
@pytest.mark.parametrize("runtime_name", sorted(RUNTIME_FACTORIES))
def test_app_runs_correctly(app_name, runtime_name):
    app = make_app(app_name, "test")
    machine = build_machine()
    runtime = RUNTIME_FACTORIES[runtime_name](machine)
    result = app.execute(runtime)
    assert result.correct, (
        f"{app_name} on {runtime_name}: err={result.max_relative_error:.2e}"
    )
    assert result.elapsed > 0


@pytest.mark.parametrize("app_name", EXTENDED_SUITE)
def test_deterministic_timing(app_name):
    """The simulator must be bit-deterministic run to run."""
    app = make_app(app_name, "test")
    inputs = app.fresh_inputs()

    def one_run():
        machine = build_machine()
        runtime = FluidiCLRuntime(machine)
        return app.execute(runtime, inputs=inputs, check=False).elapsed

    assert one_run() == one_run()


@pytest.mark.parametrize("app_name", EXTENDED_SUITE)
def test_inputs_reproducible_from_seed(app_name):
    app = make_app(app_name, "test")
    a = app.fresh_inputs()
    b = app.fresh_inputs()
    for key in a:
        assert np.array_equal(a[key], b[key])


def test_corr_with_tuned_kernel_still_correct():
    from repro.core.config import FluidiCLConfig
    from repro.polybench.corr import CorrApp

    app = CorrApp(n=128, provide_cpu_tuned_kernel=True)
    machine = build_machine()
    runtime = FluidiCLRuntime(machine, FluidiCLConfig(online_profiling=True))
    result = app.execute(runtime)
    assert result.correct
