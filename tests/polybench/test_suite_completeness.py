"""Suite-completeness regression: every registered app is fully wired.

Guards the registration contract new apps must satisfy: a size at every
scale, buildable at every scale, fuzzable at test scale (the fuzzer halves
sizes and requires multiples of 32 with a floor of 64), introspectable
kernel specs, and statically clean under the kernel linter.
"""

import pytest

from repro.analysis.analyzer import analyze_specs
from repro.polybench.suite import EXTENDED_SUITE, SCALES, make_app

IRREGULAR = ("spmv", "histogram", "bfs", "scan")


class TestRegistration:
    def test_every_scale_covers_exactly_the_suite(self):
        assert set(SCALES) == {"paper", "small", "test"}
        for scale, sizes in SCALES.items():
            assert set(sizes) == set(EXTENDED_SUITE), (
                f"scale {scale!r} does not cover the suite exactly")

    def test_irregular_apps_are_registered_last(self):
        # the fuzzer maps seed -> app by index; appending keeps historical
        # seeds (and the bit-exact bench gate built on them) stable
        assert EXTENDED_SUITE[-4:] == IRREGULAR

    @pytest.mark.parametrize("scale", sorted(SCALES))
    @pytest.mark.parametrize("name", EXTENDED_SUITE)
    def test_buildable_at_every_scale(self, name, scale):
        app = make_app(name, scale)
        assert app.name == name
        assert app.input_size_label

    @pytest.mark.parametrize("name", EXTENDED_SUITE)
    def test_test_scale_is_fuzzable(self, name):
        size = SCALES["test"][name]
        assert size >= 128, "halving must stay above the fuzzer floor (64)"
        assert size % 64 == 0, "size and size//2 must be multiples of 32"


class TestIntrospection:
    @pytest.mark.parametrize("name", EXTENDED_SUITE)
    def test_kernel_specs_exposed(self, name):
        app = make_app(name, "test")
        specs = app.kernel_specs()
        assert specs, f"{name}: kernel_specs() must not be empty"
        meta_names = {m.name for m in app.kernel_metas()}
        spec_names = {s.name for s in specs}
        assert meta_names == spec_names, (
            f"{name}: kernel_metas() and kernel_specs() disagree")

    @pytest.mark.parametrize("name", EXTENDED_SUITE)
    def test_kernels_lint_clean(self, name):
        app = make_app(name, "test")
        reports = analyze_specs(app.kernel_specs())
        findings = [f for r in reports for f in r.findings]
        assert not findings, (
            f"{name}: linter found "
            f"{[(f.rule_id, f.message) for f in findings]}")
        assert all(r.fluidic_safe for r in reports)


class TestPipelineAnalysis:
    """Every shipped ``PipelineApp`` is FK4xx/FK5xx-clean at every scale.

    The whole-pipeline dataflow analyzer must report zero findings — not
    merely zero errors — for 2mm, 3mm, bfs and scan: the shipped suite is
    the analyzer's negative control, so any new finding here is either an
    app regression or an over-eager rule.
    """

    PIPELINE_APPS = ("2mm", "3mm", "bfs", "scan")

    def test_expected_apps_are_pipelines(self):
        from repro.workloads.pipeline import PipelineApp

        actual = {name for name in EXTENDED_SUITE
                  if isinstance(make_app(name, "test"), PipelineApp)}
        assert actual == set(self.PIPELINE_APPS)

    @pytest.mark.parametrize("scale", sorted(SCALES))
    @pytest.mark.parametrize("name", PIPELINE_APPS)
    def test_pipeline_analyzes_clean(self, name, scale):
        app = make_app(name, scale)
        report = app.analyze()
        assert report.findings == [], (
            f"{name}@{scale}: pipeline analyzer found "
            f"{[(f.rule_id, f.message) for f in report.findings]}")
        assert report.fluidic_safe
