"""Tests for the suite registry and Table 2 metadata."""

import pytest

from repro.polybench import PAPER_SUITE, EXTENDED_SUITE, make_app, suite_table
from repro.polybench.suite import SCALES


class TestRegistry:
    def test_paper_suite_composition(self):
        assert PAPER_SUITE == ("2mm", "bicg", "corr", "gesummv", "syrk", "syr2k")

    def test_extended_superset(self):
        assert set(PAPER_SUITE) < set(EXTENDED_SUITE)

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            make_app("nope")

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            make_app("syrk", "huge")

    def test_scales_cover_all_benchmarks(self):
        for scale, sizes in SCALES.items():
            for name in EXTENDED_SUITE:
                assert name in sizes, f"{name} missing from scale {scale}"

    def test_test_scale_smaller_than_paper(self):
        for name in EXTENDED_SUITE:
            assert SCALES["test"][name] < SCALES["paper"][name]


class TestTable2:
    def test_rows_match_suite(self):
        rows = suite_table("test")
        assert len(rows) == len(PAPER_SUITE)
        names = [row[0].lower() for row in rows]
        assert names == list(PAPER_SUITE)

    def test_extended_rows(self):
        assert len(suite_table("test", extended=True)) == len(EXTENDED_SUITE)

    def test_kernel_counts(self):
        counts = {row[0].lower(): row[2] for row in suite_table("test")}
        assert counts["2mm"] == 2
        assert counts["bicg"] == 2
        assert counts["corr"] == 4
        assert counts["gesummv"] == 1
        assert counts["syrk"] == 1
        assert counts["syr2k"] == 1


class TestKernelMetas:
    @pytest.mark.parametrize("name", EXTENDED_SUITE)
    def test_metas_consistent_with_host_program(self, name):
        """kernel_metas() must describe exactly the launches the host
        program performs."""
        from repro.hw.machine import build_machine
        from repro.hw.specs import DeviceKind
        from repro.ocl.runtime import SingleDeviceRuntime

        app = make_app(name, "test")
        machine = build_machine()
        runtime = SingleDeviceRuntime(machine, DeviceKind.GPU)
        app.execute(runtime, check=False)
        metas = app.kernel_metas()
        assert runtime.stats.kernels_enqueued == len(metas)
        for meta in metas:
            assert meta.work_groups == meta.ndrange.total_groups
