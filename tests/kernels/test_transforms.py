"""Unit tests for kernel transformations (paper's source-to-source rewrites)."""

import pytest

from repro.kernels.transforms import (
    cpu_subkernel_variant,
    gpu_fluidic_variant,
    plain_variant,
)

from tests.conftest import make_scale_kernel


@pytest.fixture
def spec():
    return make_scale_kernel(64)


class TestPlain:
    def test_no_flags(self, spec):
        variant = plain_variant(spec)
        assert not variant.abort_checks
        assert not variant.range_checked
        assert variant.time_multiplier == 1.0


class TestGpuVariant:
    def test_all_opt(self, spec):
        variant = gpu_fluidic_variant(spec)
        assert variant.abort_checks
        assert variant.abort_in_loops
        assert variant.unrolled
        assert variant.time_multiplier < 1.1

    def test_no_unroll(self, spec):
        variant = gpu_fluidic_variant(spec, unroll=False)
        assert variant.abort_in_loops
        assert not variant.unrolled
        assert variant.time_multiplier == pytest.approx(
            spec.cost.no_unroll_penalty
        )

    def test_no_abort_in_loops(self, spec):
        variant = gpu_fluidic_variant(spec, abort_in_loops=False)
        assert variant.abort_checks
        assert not variant.abort_in_loops
        # no inner checks -> no unrolling issue -> no penalty
        assert variant.time_multiplier == 1.0
        assert variant.abort_granularity == 1

    def test_unroll_moot_without_inner_checks(self, spec):
        variant = gpu_fluidic_variant(spec, abort_in_loops=False, unroll=True)
        assert not variant.unrolled


class TestCpuVariant:
    def test_range_checked(self, spec):
        variant = cpu_subkernel_variant(spec)
        assert variant.range_checked
        assert variant.wg_split
        assert not variant.abort_checks

    def test_wg_split_toggle(self, spec):
        variant = cpu_subkernel_variant(spec, wg_split=False)
        assert not variant.wg_split

    def test_no_time_penalty(self, spec):
        assert cpu_subkernel_variant(spec).time_multiplier == 1.0
