"""Unit tests for numeric validation helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.kernels.validation import (
    assert_allclose,
    assert_results_match,
    relative_error,
)


class TestRelativeError:
    def test_identical_is_zero(self):
        a = np.array([1.0, 2.0, 3.0])
        assert relative_error(a, a) == 0.0

    def test_normalized_by_magnitude(self):
        expected = np.array([100.0, 0.0])
        actual = np.array([100.0, 1.0])
        assert relative_error(actual, expected) == pytest.approx(0.01)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_error(np.zeros(3), np.zeros(4))

    def test_zero_reference_uses_floor(self):
        assert relative_error(np.zeros(3), np.zeros(3)) == 0.0

    @given(hnp.arrays(np.float64, 10,
                      elements=st.floats(-1e6, 1e6)))
    def test_nonnegative(self, arr):
        assert relative_error(arr, np.zeros_like(arr)) >= 0


class TestAsserts:
    def test_assert_allclose_passes(self):
        assert_allclose(np.ones(3) * (1 + 1e-7), np.ones(3))

    def test_assert_allclose_fails_with_label(self):
        with pytest.raises(AssertionError, match="mybuf"):
            assert_allclose(np.ones(3) * 2, np.ones(3), label="mybuf")

    def test_results_match(self):
        assert_results_match({"a": np.ones(2)}, {"a": np.ones(2)})

    def test_results_missing_output(self):
        with pytest.raises(AssertionError, match="missing"):
            assert_results_match({}, {"a": np.ones(2)})
