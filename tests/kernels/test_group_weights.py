"""Per-work-group cost weights (irregular-workload timing model).

``KernelSpec.group_weights`` declares how expensive each flattened
work-group is relative to the kernel's nominal per-group cost.  The
executor must validate the declaration, time each dispatch wave by its
slowest resident group, and — crucially — leave the weightless path
byte-identical (the drift gates replay historical schedules).
"""

import numpy as np
import pytest

from repro.hw.cost import WorkGroupCost
from repro.hw.machine import build_machine
from repro.hw.specs import DeviceKind
from repro.kernels.dsl import Intent, KernelSpec, buffer_arg
from repro.ocl.ndrange import NDRange
from repro.ocl.runtime import SingleDeviceRuntime
from repro.polybench.suite import make_app


def _body(ctx):
    lo, hi = ctx.item_range(0)
    ctx["dst"][lo:hi] = ctx["src"][lo:hi] * 2.0


def weighted_spec(weights):
    return KernelSpec(
        name="weighted_copy",
        args=(buffer_arg("src"), buffer_arg("dst", Intent.OUT)),
        body=_body,
        cost=WorkGroupCost(flops=64.0, bytes_read=256, bytes_written=256),
        group_weights=weights,
    )


def run_and_time(spec, n=256):
    machine = build_machine()
    runtime = SingleDeviceRuntime(machine, DeviceKind.GPU)
    src = runtime.create_buffer("src", (n,), np.float32)
    dst = runtime.create_buffer("dst", (n,), np.float32)
    runtime.enqueue_write_buffer(src, np.ones(n, dtype=np.float32))
    runtime.enqueue_nd_range_kernel(spec, NDRange(n, 32),
                                    {"src": src, "dst": dst})
    out = np.empty(n, dtype=np.float32)
    runtime.enqueue_read_buffer(dst, out)
    runtime.finish()
    return machine.engine.now, out


class TestSpecValidation:
    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            weighted_spec(())

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            weighted_spec((1.0, 0.0))

    def test_infinite_weight_rejected(self):
        with pytest.raises(ValueError, match="positive finite"):
            weighted_spec((1.0, float("inf")))

    def test_with_version_carries_weights(self):
        spec = weighted_spec((1.0, 2.0, 1.0, 4.0, 1.0, 1.0, 1.0, 1.0))
        assert spec.with_version("alt", _body).group_weights \
            == spec.group_weights


class TestExecutorTiming:
    def test_length_mismatch_raises(self):
        spec = weighted_spec((1.0, 2.0))  # NDRange(256, 32) has 8 groups
        with pytest.raises(ValueError, match="8 groups"):
            run_and_time(spec)

    def test_uniform_unit_weights_match_weightless(self):
        base_t, base_out = run_and_time(weighted_spec(None))
        unit_t, unit_out = run_and_time(weighted_spec((1.0,) * 8))
        assert unit_t == base_t
        assert unit_out.tobytes() == base_out.tobytes()

    def test_heavy_groups_slow_the_wave(self):
        base_t, _ = run_and_time(weighted_spec(None))
        heavy_t, heavy_out = run_and_time(weighted_spec((1.0,) * 7 + (8.0,)))
        assert heavy_t > base_t
        # timing-only: numerics must not depend on weights
        assert heavy_out.tobytes() == run_and_time(weighted_spec(None))[1].tobytes()

    def test_spmv_declares_skewed_weights(self):
        app = make_app("spmv", "test")
        inputs = app.fresh_inputs()
        weights = app.group_weights(inputs)
        assert len(weights) == app.n // 8
        assert all(w > 0 for w in weights)
        assert max(weights) / min(weights) > 3.0, (
            "the seeded CSR skew should span a wide per-group cost range")
