"""Unit tests for the kernel DSL."""

import numpy as np
import pytest

from repro.hw.cost import UNROLLED_CHECK_PENALTY, WorkGroupCost
from repro.kernels.dsl import (
    ArgSpec,
    Intent,
    KernelSpec,
    KernelVariant,
    WorkGroupContext,
    buffer_arg,
    scalar_arg,
)

from tests.conftest import make_scale_kernel


class TestIntent:
    def test_written(self):
        assert Intent.OUT.is_written
        assert Intent.INOUT.is_written
        assert not Intent.IN.is_written

    def test_read(self):
        assert Intent.IN.is_read
        assert Intent.INOUT.is_read
        assert not Intent.OUT.is_read


class TestArgSpec:
    def test_buffer_arg_defaults(self):
        spec = buffer_arg("x")
        assert spec.is_buffer
        assert spec.intent is Intent.IN

    def test_scalar_must_be_in(self):
        with pytest.raises(ValueError):
            ArgSpec("alpha", Intent.OUT, is_buffer=False)

    def test_scalar_arg_helper(self):
        spec = scalar_arg("alpha")
        assert not spec.is_buffer


class TestKernelSpec:
    def test_duplicate_args_rejected(self):
        cost = WorkGroupCost(flops=1, bytes_read=1, bytes_written=1)
        with pytest.raises(ValueError):
            KernelSpec("k", (buffer_arg("x"), buffer_arg("x")),
                       body=lambda ctx: None, cost=cost)

    def test_out_and_in_args(self):
        spec = KernelSpec(
            "k",
            (buffer_arg("a"), buffer_arg("b", Intent.OUT),
             buffer_arg("c", Intent.INOUT), scalar_arg("s")),
            body=lambda ctx: None,
            cost=WorkGroupCost(flops=1, bytes_read=1, bytes_written=1),
        )
        assert [a.name for a in spec.out_args] == ["b", "c"]
        assert [a.name for a in spec.in_args] == ["a", "c"]
        assert [a.name for a in spec.buffer_args] == ["a", "b", "c"]

    def test_arg_lookup(self):
        spec = make_scale_kernel(64)
        assert spec.arg("x").intent is Intent.IN
        with pytest.raises(KeyError):
            spec.arg("nope")

    def test_bind_check(self):
        spec = make_scale_kernel(64)
        spec.bind_check({"x": 1, "y": 2, "alpha": 3})
        with pytest.raises(TypeError):
            spec.bind_check({"x": 1})

    def test_with_version(self):
        spec = make_scale_kernel(64)
        alt = spec.with_version("tuned", spec.body)
        assert alt.version == "tuned"
        assert alt.name == spec.name
        assert alt.cost == spec.cost


class TestWorkGroupContext:
    def test_item_ranges(self):
        ctx = WorkGroupContext((2, 1), (4, 4), (16, 8), {})
        assert ctx.item_range(0) == (32, 48)
        assert ctx.item_range(1) == (8, 16)
        assert ctx.rows() == slice(32, 48)
        assert ctx.cols() == slice(8, 16)

    def test_arg_access(self):
        data = np.zeros(4)
        ctx = WorkGroupContext((0,), (1,), (4,), {"buf": data})
        assert ctx["buf"] is data


class TestKernelVariant:
    def test_plain_multiplier_is_one(self):
        variant = KernelVariant(make_scale_kernel(64))
        assert variant.time_multiplier == 1.0
        assert variant.abort_granularity == 1

    def test_inner_checks_with_unroll(self):
        variant = KernelVariant(make_scale_kernel(64), abort_checks=True,
                                abort_in_loops=True, unrolled=True)
        assert variant.time_multiplier == pytest.approx(UNROLLED_CHECK_PENALTY)

    def test_inner_checks_without_unroll(self):
        spec = make_scale_kernel(64)
        variant = KernelVariant(spec, abort_checks=True, abort_in_loops=True,
                                unrolled=False)
        assert variant.time_multiplier == pytest.approx(
            spec.cost.no_unroll_penalty
        )

    def test_granularity_follows_loop_iters(self):
        spec = make_scale_kernel(64, loop_iters=40)
        variant = KernelVariant(spec, abort_checks=True, abort_in_loops=True)
        assert variant.abort_granularity == 40

    def test_extra_multiplier_composes(self):
        variant = KernelVariant(make_scale_kernel(64),
                                extra_cost_multiplier=1.5)
        assert variant.time_multiplier == pytest.approx(1.5)


class TestDeclarationDiagnostics:
    """Declaration errors carry the analyzer's typed diagnostics
    (KernelDeclarationError subclasses ValueError, so legacy callers and
    the pytest.raises(ValueError) sites above keep working)."""

    def test_scalar_intent_error_names_the_argument(self):
        from repro.analysis import KernelDeclarationError

        with pytest.raises(KernelDeclarationError) as excinfo:
            ArgSpec("alpha", Intent.OUT, is_buffer=False)
        finding = excinfo.value.finding
        assert finding.rule_id == "FK002"
        assert finding.arg == "alpha"
        assert "alpha" in str(excinfo.value)
        assert "buffer_arg" in finding.hint

    def test_duplicate_args_error_names_kernel_and_argument(self):
        from repro.analysis import KernelDeclarationError

        with pytest.raises(KernelDeclarationError) as excinfo:
            KernelSpec(
                name="dup_kernel",
                args=(buffer_arg("x"), buffer_arg("x")),
                body=lambda ctx: None,
                cost=WorkGroupCost(flops=1, bytes_read=1, bytes_written=1),
            )
        finding = excinfo.value.finding
        assert finding.rule_id == "FK001"
        assert finding.kernel == "dup_kernel"
        assert finding.arg == "x"
        assert "dup_kernel" in str(excinfo.value)

    def test_non_identifier_name_rejected(self):
        from repro.analysis import KernelDeclarationError

        with pytest.raises(KernelDeclarationError) as excinfo:
            buffer_arg("not a name")
        assert excinfo.value.finding.rule_id == "FK003"

    def test_declaration_errors_are_value_errors(self):
        with pytest.raises(ValueError):
            scalar_arg("x")  # fine
            ArgSpec("y", Intent.INOUT, is_buffer=False)
