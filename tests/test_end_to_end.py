"""Headline end-to-end properties at 'small' scale.

The paper's core claims, verified on every CI run: FluidiCL tracks the
better single device everywhere and beats it where cooperation pays.
"""

import pytest

from repro.harness.runner import fluidicl_time, single_device_times
from repro.polybench import PAPER_SUITE, make_app


@pytest.fixture(scope="module")
def small_results():
    results = {}
    for name in PAPER_SUITE:
        app = make_app(name, "small")
        inputs = app.fresh_inputs()
        single = single_device_times(app, inputs=inputs)
        fcl = fluidicl_time(app, inputs=inputs)
        results[name] = {**single, "fluidicl": fcl}
    return results


class TestHeadlineClaims:
    def test_never_far_from_best_device(self, small_results):
        """Paper: 'performance of our runtime comes to within a few percent
        of the best of the two devices' — allow 15% at quarter scale, where
        fixed overheads loom much larger than at paper scale."""
        for name, times in small_results.items():
            best = min(times["cpu"], times["gpu"])
            assert times["fluidicl"] <= 1.15 * best, (
                f"{name}: fluidicl {times['fluidicl']:.4f}s vs best {best:.4f}s"
            )

    def test_beats_best_on_cooperative_benchmarks(self, small_results):
        for name in ("syrk", "syr2k"):
            times = small_results[name]
            best = min(times["cpu"], times["gpu"])
            assert times["fluidicl"] < best, f"{name} should be cooperative"

    def test_tracks_cpu_on_cpu_benchmark(self, small_results):
        times = small_results["gesummv"]
        assert times["cpu"] < times["gpu"]
        assert times["fluidicl"] < times["gpu"]

    def test_tracks_gpu_on_gpu_benchmarks(self, small_results):
        for name in ("2mm", "corr"):
            times = small_results[name]
            assert times["gpu"] < times["cpu"]
            assert times["fluidicl"] < times["cpu"]

    def test_geomean_speedups_positive(self, small_results):
        from repro.harness.report import geomean

        over_gpu = geomean(
            [t["gpu"] / t["fluidicl"] for t in small_results.values()]
        )
        over_cpu = geomean(
            [t["cpu"] / t["fluidicl"] for t in small_results.values()]
        )
        assert over_gpu > 1.2
        assert over_cpu > 1.2
