"""Unit tests for device memory accounting."""

import pytest

from repro.hw.memory import DeviceMemory, OutOfDeviceMemoryError


class TestDeviceMemory:
    def test_allocate_and_release(self):
        memory = DeviceMemory(1000)
        handle = memory.allocate(400)
        assert memory.used == 400
        assert memory.free == 600
        memory.release(handle)
        assert memory.used == 0

    def test_out_of_memory(self):
        memory = DeviceMemory(100)
        memory.allocate(80)
        with pytest.raises(OutOfDeviceMemoryError):
            memory.allocate(30)

    def test_exact_fit_allowed(self):
        memory = DeviceMemory(100)
        memory.allocate(100)
        assert memory.free == 0

    def test_peak_usage_tracked(self):
        memory = DeviceMemory(1000)
        a = memory.allocate(600)
        memory.release(a)
        memory.allocate(100)
        assert memory.peak_usage == 600

    def test_release_unknown_handle(self):
        memory = DeviceMemory(100)
        with pytest.raises(KeyError):
            memory.release(42)

    def test_double_release(self):
        memory = DeviceMemory(100)
        handle = memory.allocate(10)
        memory.release(handle)
        with pytest.raises(KeyError):
            memory.release(handle)

    def test_allocation_count(self):
        memory = DeviceMemory(100)
        memory.allocate(10)
        memory.allocate(10)
        assert memory.allocation_count == 2

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            DeviceMemory(0)
        memory = DeviceMemory(100)
        with pytest.raises(ValueError):
            memory.allocate(-1)
