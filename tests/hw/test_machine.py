"""Unit tests for the Machine bundle."""

import pytest

from repro.hw.machine import build_machine
from repro.hw.specs import TESLA_C2070, XEON_W3550, DeviceKind


class TestBuildMachine:
    def test_default_devices_in_order(self, machine):
        kinds = [spec.kind for spec, _link in machine.devices]
        assert kinds == [DeviceKind.GPU, DeviceKind.CPU]

    def test_clock_starts_at_zero(self, machine):
        assert machine.now == 0.0

    def test_host_api_call_advances_clock(self, machine):
        before = machine.now
        machine.host_api_call()
        assert machine.now == pytest.approx(
            before + machine.host.api_call_overhead
        )

    def test_tracer_absent_by_default(self, machine):
        assert machine.tracer is None

    def test_tracer_present_when_requested(self, traced_machine):
        assert traced_machine.tracer is not None

    def test_run_until_event(self, machine):
        timeout = machine.engine.timeout(1.5, value="v")
        assert machine.run_until(timeout) == "v"
        assert machine.now == pytest.approx(1.5)

    def test_custom_specs(self):
        machine = build_machine(gpu=TESLA_C2070.scaled(0.5))
        gpu_spec = machine.devices[0][0]
        assert gpu_spec.peak_flops == pytest.approx(TESLA_C2070.peak_flops / 2)
        assert machine.devices[1][0] is XEON_W3550
