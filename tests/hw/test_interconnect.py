"""Unit tests for the interconnect model."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.interconnect import InterconnectSpec, transfer_time
from repro.hw.specs import HOST_DDR3, PCIE_GEN2_X16


class TestInterconnect:
    def test_transfer_time_formula(self):
        link = InterconnectSpec("test", latency=1e-5, bandwidth=1e9)
        assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-5)

    def test_zero_bytes_costs_latency(self):
        assert PCIE_GEN2_X16.transfer_time(0) == PCIE_GEN2_X16.latency

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PCIE_GEN2_X16.transfer_time(-1)

    def test_functional_alias(self):
        assert transfer_time(PCIE_GEN2_X16, 1024) == PCIE_GEN2_X16.transfer_time(1024)

    def test_validation(self):
        with pytest.raises(ValueError):
            InterconnectSpec("bad", latency=-1, bandwidth=1e9)
        with pytest.raises(ValueError):
            InterconnectSpec("bad", latency=0, bandwidth=0)

    def test_host_link_faster_for_small_transfers(self):
        assert HOST_DDR3.transfer_time(4096) < PCIE_GEN2_X16.transfer_time(4096)

    @given(nbytes=st.floats(0, 1e12))
    def test_monotone_in_bytes(self, nbytes):
        assert (
            PCIE_GEN2_X16.transfer_time(nbytes + 1)
            > PCIE_GEN2_X16.transfer_time(nbytes)
        )
