"""Unit tests for device/host specs and presets."""

import dataclasses

import pytest

from repro.hw.specs import (
    DEFAULT_HOST,
    HOST_DDR3,
    PCIE_GEN2_X16,
    TESLA_C2070,
    XEON_W3550,
    DeviceKind,
)


class TestPresets:
    def test_gpu_preset_shape(self):
        assert TESLA_C2070.kind is DeviceKind.GPU
        assert TESLA_C2070.compute_units == 14
        assert TESLA_C2070.concurrent_workgroups == 112
        assert TESLA_C2070.peak_flops > 1e12

    def test_cpu_preset_shape(self):
        assert XEON_W3550.kind is DeviceKind.CPU
        assert XEON_W3550.compute_units == 8
        assert XEON_W3550.concurrent_workgroups == 8

    def test_gpu_has_more_bandwidth_than_pcie(self):
        assert TESLA_C2070.mem_bandwidth > 10 * PCIE_GEN2_X16.bandwidth

    def test_host_link_low_latency(self):
        assert HOST_DDR3.latency < PCIE_GEN2_X16.latency

    def test_cpu_launch_overhead_exceeds_gpu(self):
        # The AMD CPU runtime's kernel dispatch is the expensive one the
        # adaptive chunker amortizes (paper section 5.1).
        assert XEON_W3550.kernel_launch_overhead > TESLA_C2070.kernel_launch_overhead

    def test_default_host_sane(self):
        assert DEFAULT_HOST.memcpy_bandwidth > 1e9
        assert DEFAULT_HOST.thread_spawn_overhead > 0


class TestDeviceSpec:
    def test_slot_shares(self):
        assert TESLA_C2070.slot_flops == pytest.approx(
            TESLA_C2070.peak_flops / 112
        )
        assert TESLA_C2070.slot_bandwidth == pytest.approx(
            TESLA_C2070.mem_bandwidth / 112
        )

    def test_scaled(self):
        double = TESLA_C2070.scaled(2.0)
        assert double.peak_flops == pytest.approx(2 * TESLA_C2070.peak_flops)
        assert double.compute_units == TESLA_C2070.compute_units

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            TESLA_C2070.peak_flops = 1.0

    def test_validation_compute_units(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TESLA_C2070, compute_units=0)

    def test_validation_concurrency_vs_units(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TESLA_C2070, concurrent_workgroups=4)

    def test_validation_positive_rates(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TESLA_C2070, peak_flops=0.0)

    def test_kind_is_string_enum(self):
        assert DeviceKind.GPU.value == "gpu"
        assert str(DeviceKind.CPU) == "cpu"
