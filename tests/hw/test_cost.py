"""Unit tests for the work-group cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.hw.cost import UNROLLED_CHECK_PENALTY, WorkGroupCost, wave_duration, wg_time
from repro.hw.specs import TESLA_C2070, XEON_W3550


def cost(flops=1e6, read=1e5, write=1e4, **kwargs):
    return WorkGroupCost(flops=flops, bytes_read=read, bytes_written=write,
                         **kwargs)


class TestWorkGroupCost:
    def test_bytes_total(self):
        c = cost(read=100, write=50)
        assert c.bytes_total == 150

    def test_negative_components_rejected(self):
        with pytest.raises(ValueError):
            cost(flops=-1)

    def test_loop_iters_validated(self):
        with pytest.raises(ValueError):
            cost(loop_iters=0)

    def test_efficiency_range_validated(self):
        with pytest.raises(ValueError):
            cost(compute_efficiency={"gpu": 0.0})
        with pytest.raises(ValueError):
            cost(memory_efficiency={"cpu": 2.0})

    def test_with_penalty_scales_flops_only(self):
        c = cost(flops=100, read=10, write=10)
        inflated = c.with_penalty(2.0)
        assert inflated.flops == 200
        assert inflated.bytes_read == 10

    def test_scaled(self):
        c = cost(flops=100, read=10, write=10).scaled(0.5)
        assert (c.flops, c.bytes_read, c.bytes_written) == (50, 5, 5)


class TestWgTime:
    def test_roofline_compute_bound(self):
        c = cost(flops=1e9, read=1.0, write=0.0)
        expected = 1e9 / TESLA_C2070.slot_flops
        assert wg_time(c, TESLA_C2070) == pytest.approx(expected)

    def test_roofline_memory_bound(self):
        c = cost(flops=1.0, read=1e8, write=0.0)
        expected = 1e8 / TESLA_C2070.slot_bandwidth
        assert wg_time(c, TESLA_C2070) == pytest.approx(expected)

    def test_efficiency_slows_down(self):
        fast = cost(compute_efficiency={"gpu": 1.0}, memory_efficiency={"gpu": 1.0})
        slow = cost(compute_efficiency={"gpu": 0.5}, memory_efficiency={"gpu": 0.5})
        assert wg_time(slow, TESLA_C2070) == pytest.approx(
            2 * wg_time(fast, TESLA_C2070)
        )

    def test_per_device_efficiency_lookup(self):
        c = cost(
            compute_efficiency={"gpu": 1.0, "cpu": 0.1},
            memory_efficiency={"gpu": 1.0, "cpu": 0.1},
        )
        # Relative to hardware peaks, the CPU run must be far slower here.
        gpu_hw_ratio = wg_time(c, XEON_W3550) / wg_time(c, TESLA_C2070)
        assert gpu_hw_ratio > 5

    def test_time_multiplier(self):
        c = cost()
        assert wg_time(c, TESLA_C2070, time_multiplier=1.3) == pytest.approx(
            1.3 * wg_time(c, TESLA_C2070)
        )

    def test_unrolled_penalty_is_small(self):
        assert 1.0 < UNROLLED_CHECK_PENALTY < 1.1

    @given(
        flops=st.floats(1.0, 1e12),
        read=st.floats(0.0, 1e9),
        write=st.floats(0.0, 1e9),
    )
    def test_time_always_positive_and_monotone(self, flops, read, write):
        base = WorkGroupCost(flops=flops, bytes_read=read, bytes_written=write)
        bigger = WorkGroupCost(
            flops=flops * 2, bytes_read=read * 2, bytes_written=write * 2
        )
        assert wg_time(base, TESLA_C2070) > 0
        assert wg_time(bigger, TESLA_C2070) >= wg_time(base, TESLA_C2070)


class TestWaveDuration:
    def test_includes_overhead(self):
        c = cost()
        assert wave_duration(c, TESLA_C2070, 10) == pytest.approx(
            TESLA_C2070.wave_overhead + wg_time(c, TESLA_C2070)
        )

    def test_partial_wave_same_duration(self):
        c = cost()
        assert wave_duration(c, TESLA_C2070, 1) == wave_duration(c, TESLA_C2070, 112)

    def test_oversize_wave_rejected(self):
        with pytest.raises(ValueError):
            wave_duration(cost(), TESLA_C2070, 113)

    def test_empty_wave_rejected(self):
        with pytest.raises(ValueError):
            wave_duration(cost(), TESLA_C2070, 0)
