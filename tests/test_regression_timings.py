"""Timing-model regression pins.

The simulator is deterministic, so key modeled quantities can be pinned
tightly.  These are *model* regressions, not correctness tests: if one
fails after an intentional cost-model change, re-derive the expectation
and update EXPERIMENTS.md alongside it.
"""

import numpy as np
import pytest

from repro.hw.cost import wg_time
from repro.hw.machine import build_machine
from repro.hw.specs import PCIE_GEN2_X16, TESLA_C2070, XEON_W3550
from repro.ocl.ndrange import NDRange
from repro.ocl.platform import Platform

from tests.conftest import make_scale_kernel


class TestAnalyticPins:
    def test_pcie_transfer_of_64mib(self):
        seconds = PCIE_GEN2_X16.transfer_time(64 * 2**20)
        assert seconds == pytest.approx(0.011995, rel=1e-3)

    def test_gpu_wave_throughput_at_full_efficiency(self):
        """A full wave of bandwidth-bound groups streams at device peak."""
        spec = make_scale_kernel(112 * 16, gpu_eff=1.0)
        per_group = wg_time(spec.cost, TESLA_C2070)
        bytes_per_group = spec.cost.bytes_total
        achieved = 112 * bytes_per_group / per_group
        assert achieved == pytest.approx(TESLA_C2070.mem_bandwidth, rel=1e-6)

    def test_cpu_wave_throughput_at_full_efficiency(self):
        spec = make_scale_kernel(8 * 16, cpu_eff=1.0)
        per_group = wg_time(spec.cost, XEON_W3550)
        achieved = 8 * spec.cost.bytes_total / per_group
        assert achieved == pytest.approx(XEON_W3550.mem_bandwidth, rel=1e-6)

    def test_device_bandwidth_ratio(self):
        assert TESLA_C2070.mem_bandwidth / XEON_W3550.mem_bandwidth == (
            pytest.approx(5.625)
        )


class TestEndToEndPins:
    def test_single_device_kernel_time_formula(self):
        """GPU kernel over G groups = launch + ceil(G/112) waves."""
        machine = build_machine()
        platform = Platform(machine)
        gpu = platform.gpu
        queue = platform.create_context().create_queue(gpu)
        groups, local = 300, 16
        spec = make_scale_kernel(groups * local)
        from repro.kernels.transforms import plain_variant
        from repro.ocl.kernel import Kernel

        x = gpu.create_buffer((groups * local,), np.float32)
        y = gpu.create_buffer((groups * local,), np.float32)
        kernel = Kernel(plain_variant(spec), {"x": x, "y": y, "alpha": 1.0})
        event = queue.enqueue_nd_range_kernel(kernel, NDRange(groups * local, local))
        machine.run_until(event.done)
        waves = -(-groups // 112)
        expected = (
            gpu.spec.kernel_launch_overhead
            + waves * (gpu.spec.wave_overhead + wg_time(spec.cost, gpu.spec))
        )
        assert event.duration == pytest.approx(expected, rel=1e-9)

    def test_fluidicl_determinism_pin(self):
        """Bit-identical repeated runs: same simulated nanosecond."""
        from repro.core.runtime import FluidiCLRuntime

        def run_once():
            machine = build_machine()
            runtime = FluidiCLRuntime(machine)
            n = 8192
            spec = make_scale_kernel(n, gpu_eff=0.4, cpu_eff=0.6,
                                     work_scale=32.0)
            x = np.ones(n, dtype=np.float32)
            buf_x = runtime.create_buffer("x", (n,), np.float32)
            buf_y = runtime.create_buffer("y", (n,), np.float32)
            runtime.enqueue_write_buffer(buf_x, x)
            runtime.enqueue_nd_range_kernel(
                spec, NDRange(n, 16), {"x": buf_x, "y": buf_y, "alpha": 2.0}
            )
            out = np.zeros(n, dtype=np.float32)
            runtime.enqueue_read_buffer(buf_y, out)
            runtime.finish()
            return machine.now

        assert run_once() == run_once()

    def test_engine_event_throughput_floor(self):
        """Wall-clock guard on the engine's hottest loop (schedule + drain).

        The threshold is deliberately generous — CI machines are shared
        and slow — but catches order-of-magnitude regressions such as
        reintroducing per-event string formatting or per-event method
        dispatch in the run loop.  The local `harness bench` snapshots
        (BENCH_<n>.json) hold the tight numbers.
        """
        from repro.bench.measure import measure
        from repro.bench.micro import MICRO_BENCHMARKS

        case = next(c for c in MICRO_BENCHMARKS if c.name == "event_churn")
        n = case.smoke_n
        timing = measure(lambda: case.fn(n), repeats=3, warmup=1)
        throughput = n / timing.best
        # Optimized engines run this at >200k events/s on a laptop; 20k/s
        # tolerates a 10x slower shared CI runner.
        assert throughput > 20_000, (
            f"event churn at {throughput:,.0f} events/s "
            f"(best of {len(timing.runs)} runs: {timing.best:.3f}s for {n})"
        )

    def test_condition_wait_throughput_floor(self):
        """Same guard for the §5.3 any_of wait loop — the path the stale
        callback leak used to degrade quadratically."""
        from repro.bench.measure import measure
        from repro.bench.micro import MICRO_BENCHMARKS

        case = next(c for c in MICRO_BENCHMARKS if c.name == "condition_wait")
        n = case.smoke_n
        timing = measure(lambda: case.fn(n), repeats=3, warmup=1)
        throughput = n / timing.best
        assert throughput > 10_000, (
            f"condition waits at {throughput:,.0f}/s "
            f"(best of {len(timing.runs)} runs: {timing.best:.3f}s for {n})"
        )
        # the leak fix keeps the long-lived event's callback list bounded
        info = timing.last_result
        assert info["meta"]["stale_callbacks"] <= 1

    def test_subkernel_launch_rate_floor(self):
        """Wall-clock guard on the cooperative subkernel launch path
        (variant/kernel cache, queue traffic, status shipping)."""
        from repro.bench.measure import measure
        from repro.bench.micro import MICRO_BENCHMARKS

        case = next(c for c in MICRO_BENCHMARKS
                    if c.name == "subkernel_launch")
        timing = measure(lambda: case.fn(case.smoke_n), repeats=2, warmup=1)
        info = timing.last_result
        assert info["work"] >= 1, "no subkernels launched — case degenerated"
        rate = info["work"] / timing.best
        # A full cooperative app at this size simulates in ~25ms locally;
        # 2/s means a 100x slower run and a genuine regression.
        assert rate > 2, (
            f"subkernel launch rate {rate:.1f}/s "
            f"({info['work']} subkernels in {timing.best:.3f}s)"
        )

    def test_suite_regime_pins(self):
        """Each paper benchmark stays in its calibrated regime at paper
        scale: the winning device must not flip under refactors."""
        from repro.harness.runner import single_device_times
        from repro.polybench import make_app

        expectations = {
            "2mm": "gpu", "corr": "gpu",
            "bicg": "cpu", "gesummv": "cpu",
            "syrk": "gpu", "syr2k": "gpu",
        }
        for name, winner in expectations.items():
            app = make_app(name, "paper")
            times = single_device_times(app, check=False)
            actual = min(times, key=times.get)
            assert actual == winner, (
                f"{name}: expected {winner}-favored, got {actual} "
                f"(cpu={times['cpu']:.4f}s gpu={times['gpu']:.4f}s)"
            )
