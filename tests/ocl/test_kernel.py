"""Tests for kernel argument binding and work-group body execution."""

import numpy as np
import pytest

from repro.kernels.transforms import plain_variant
from repro.ocl.kernel import Kernel
from repro.ocl.ndrange import NDRange
from repro.ocl.platform import Platform

from tests.conftest import make_scale_kernel


@pytest.fixture
def platform(machine):
    return Platform(machine)


def bind(platform, spec, n=64):
    gpu = platform.gpu
    x = gpu.create_buffer((n,), np.float32, name="x")
    y = gpu.create_buffer((n,), np.float32, name="y")
    return Kernel(plain_variant(spec), {"x": x, "y": y, "alpha": 2.0}), x, y


class TestBinding:
    def test_missing_argument(self, platform):
        spec = make_scale_kernel(64)
        gpu = platform.gpu
        x = gpu.create_buffer((64,), np.float32)
        with pytest.raises(TypeError, match="missing"):
            Kernel(plain_variant(spec), {"x": x, "alpha": 1.0})

    def test_unexpected_argument(self, platform):
        spec = make_scale_kernel(64)
        kernel_args = {
            "x": platform.gpu.create_buffer((64,), np.float32),
            "y": platform.gpu.create_buffer((64,), np.float32),
            "alpha": 1.0,
            "bogus": 3,
        }
        with pytest.raises(TypeError, match="unexpected"):
            Kernel(plain_variant(spec), kernel_args)

    def test_scalar_passed_for_buffer(self, platform):
        spec = make_scale_kernel(64)
        with pytest.raises(TypeError, match="must be a Buffer"):
            Kernel(plain_variant(spec), {"x": 1.0, "y": 2.0, "alpha": 3.0})

    def test_buffer_passed_for_scalar(self, platform):
        spec = make_scale_kernel(64)
        buf = platform.gpu.create_buffer((64,), np.float32)
        with pytest.raises(TypeError, match="scalar"):
            Kernel(plain_variant(spec), {"x": buf, "y": buf, "alpha": buf})

    def test_check_device_rejects_foreign_buffers(self, platform):
        spec = make_scale_kernel(64)
        kernel, _x, _y = bind(platform, spec)
        with pytest.raises(ValueError, match="lives on"):
            kernel.check_device(platform.cpu)

    def test_buffers_mapping(self, platform):
        spec = make_scale_kernel(64)
        kernel, x, y = bind(platform, spec)
        assert kernel.buffers() == {"x": x, "y": y}


class TestBodyExecution:
    def test_run_workgroup_touches_only_its_block(self, platform):
        spec = make_scale_kernel(64, local_size=16)
        kernel, x, y = bind(platform, spec)
        x.write_from(np.ones(64, dtype=np.float32))
        kernel.run_workgroup(NDRange(64, 16), 1)
        assert np.all(y.array[16:32] == 2.0)
        assert np.all(y.array[:16] == 0)
        assert np.all(y.array[32:] == 0)

    def test_wg_seconds_respects_variant_multiplier(self, platform):
        from repro.kernels.dsl import KernelVariant

        spec = make_scale_kernel(64)
        plain = Kernel(plain_variant(spec), _dummy_args(platform, spec))
        inflated = Kernel(
            KernelVariant(spec, abort_checks=True, abort_in_loops=True,
                          unrolled=False),
            _dummy_args(platform, spec),
        )
        ratio = (
            inflated.wg_seconds(platform.gpu.spec)
            / plain.wg_seconds(platform.gpu.spec)
        )
        assert ratio == pytest.approx(spec.cost.no_unroll_penalty)


def _dummy_args(platform, spec):
    gpu = platform.gpu
    return {
        "x": gpu.create_buffer((64,), np.float32),
        "y": gpu.create_buffer((64,), np.float32),
        "alpha": 1.0,
    }
