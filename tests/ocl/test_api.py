"""Tests for the clFoo-style function facade (the find-and-replace story)."""

import numpy as np
import pytest

from repro.core.runtime import FluidiCLRuntime
from repro.hw.machine import build_machine
from repro.hw.specs import DeviceKind
from repro.ocl.api import (
    cl_create_buffer,
    cl_enqueue_nd_range_kernel,
    cl_enqueue_read_buffer,
    cl_enqueue_write_buffer,
    cl_finish,
    cl_release,
)
from repro.ocl.ndrange import NDRange
from repro.ocl.runtime import SingleDeviceRuntime

from tests.conftest import make_scale_kernel


def c_style_host_program(runtime, n=256):
    """A host program written exactly like a ported OpenCL C program."""
    spec = make_scale_kernel(n)
    x = np.arange(n, dtype=np.float32)
    buf_x = cl_create_buffer(runtime, "x", (n,), np.float32)
    buf_y = cl_create_buffer(runtime, "y", (n,), np.float32)
    cl_enqueue_write_buffer(runtime, buf_x, x)
    cl_enqueue_nd_range_kernel(
        runtime, spec, NDRange(n, 16), {"x": buf_x, "y": buf_y, "alpha": 2.0}
    )
    y = np.zeros(n, dtype=np.float32)
    cl_enqueue_read_buffer(runtime, buf_y, y)
    cl_finish(runtime)
    return x, y


@pytest.mark.parametrize("factory", [
    lambda m: SingleDeviceRuntime(m, DeviceKind.GPU),
    lambda m: SingleDeviceRuntime(m, DeviceKind.CPU),
    FluidiCLRuntime,
], ids=["gpu", "cpu", "fluidicl"])
def test_same_program_any_runtime(factory):
    """The paper's porting claim: swap the runtime, change nothing else."""
    machine = build_machine()
    runtime = factory(machine)
    x, y = c_style_host_program(runtime)
    assert np.allclose(y, 2.0 * x)
    cl_release(runtime)
