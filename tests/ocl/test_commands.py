"""Command-level unit tests."""

import numpy as np
import pytest

from repro.ocl.commands import CallbackCommand, CopyBufferCommand
from repro.ocl.platform import Platform


@pytest.fixture
def platform(machine):
    return Platform(machine)


@pytest.fixture
def gpu_queue(platform):
    return platform.create_context().create_queue(platform.gpu, "q")


class TestWriteBuffer:
    def test_callable_source_snapshots_at_execution(self, machine, platform,
                                                    gpu_queue):
        """FluidiCL passes deferred sources (the scheduler's intermediate
        copies); the data must be taken when the transfer completes."""
        gpu = platform.gpu
        buf = gpu.create_buffer((4,), np.float32)
        box = {"data": np.zeros(4, dtype=np.float32)}
        event = gpu_queue.enqueue_write_buffer(buf, lambda: box["data"])
        box["data"] = np.full(4, 7.0, dtype=np.float32)
        machine.run_until(event.done)
        assert np.all(buf.array == 7.0)

    def test_partial_nbytes_charged(self, machine, platform, gpu_queue):
        gpu = platform.gpu
        buf = gpu.create_buffer((1 << 20,), np.uint8)
        small = gpu_queue.enqueue_write_buffer(
            buf, np.zeros(1 << 20, dtype=np.uint8), nbytes=64
        )
        machine.run_until(small.done)
        # Time charged for 64 bytes, i.e. essentially just link latency.
        assert small.duration == pytest.approx(
            gpu.transfer_time(64), rel=1e-9
        )


class TestCopyBuffer:
    def test_size_mismatch_rejected(self, platform):
        gpu = platform.gpu
        a = gpu.create_buffer((4,), np.float32)
        b = gpu.create_buffer((8,), np.float32)
        with pytest.raises(ValueError):
            CopyBufferCommand(a, b)

    def test_cross_device_rejected(self, platform):
        a = platform.gpu.create_buffer((4,), np.float32)
        b = platform.cpu.create_buffer((4,), np.float32)
        with pytest.raises(ValueError):
            CopyBufferCommand(a, b)

    def test_copy_time_uses_device_bandwidth(self, machine, platform, gpu_queue):
        gpu = platform.gpu
        a = gpu.create_buffer((1 << 20,), np.uint8)
        b = gpu.create_buffer((1 << 20,), np.uint8)
        event = gpu_queue.enqueue_copy_buffer(a, b)
        machine.run_until(event.done)
        assert event.duration == pytest.approx(
            gpu.device_copy_time(1 << 20), rel=1e-9
        )


class TestCallback:
    def test_engine_name_validated(self):
        with pytest.raises(ValueError):
            CallbackCommand(lambda q: None, engine="warp-drive")

    def test_engine_occupancy_duration(self, machine, platform, gpu_queue):
        fired = []
        event = gpu_queue.enqueue_callback(
            lambda _q: fired.append(machine.now), engine="h2d", duration=1e-3
        )
        machine.run_until(event.done)
        assert fired[0] >= 1e-3

    def test_plain_delay_without_engine(self, machine, gpu_queue):
        event = gpu_queue.enqueue_callback(lambda _q: None, duration=5e-4)
        machine.run_until(event.done)
        assert event.duration == pytest.approx(5e-4)

    def test_describe_carries_label(self):
        command = CallbackCommand(lambda q: None, label="status->42")
        assert command.describe() == {"label": "status->42"}
