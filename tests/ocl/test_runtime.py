"""End-to-end tests of the single-device vendor runtime."""

import numpy as np
import pytest

from repro.hw.specs import DeviceKind
from repro.ocl.ndrange import NDRange
from repro.ocl.runtime import SingleDeviceRuntime

from tests.conftest import make_scale_kernel


def run_program(machine, kind, n=256, local=16):
    runtime = SingleDeviceRuntime(machine, kind)
    spec = make_scale_kernel(n, local)
    x = np.arange(n, dtype=np.float32)
    buf_x = runtime.create_buffer("x", (n,), np.float32)
    buf_y = runtime.create_buffer("y", (n,), np.float32)
    runtime.enqueue_write_buffer(buf_x, x)
    runtime.enqueue_nd_range_kernel(
        spec, NDRange(n, local), {"x": buf_x, "y": buf_y, "alpha": 3.0}
    )
    y = np.zeros(n, dtype=np.float32)
    runtime.enqueue_read_buffer(buf_y, y)
    runtime.finish()
    return runtime, x, y


@pytest.mark.parametrize("kind", [DeviceKind.GPU, DeviceKind.CPU])
class TestSingleDeviceRuntime:
    def test_correct_results(self, machine, kind):
        _rt, x, y = run_program(machine, kind)
        assert np.allclose(y, 3.0 * x)

    def test_time_advances(self, machine, kind):
        run_program(machine, kind)
        assert machine.now > 0

    def test_stats(self, machine, kind):
        runtime, _x, _y = run_program(machine, kind)
        assert runtime.stats.kernels_enqueued == 1
        assert runtime.stats.writes == 1
        assert runtime.stats.reads == 1


class TestVersionHandling:
    def test_multiple_versions_uses_first(self, machine):
        runtime = SingleDeviceRuntime(machine, DeviceKind.GPU)
        n = 64
        base = make_scale_kernel(n)
        alt = base.with_version("alt", base.body)
        buf_x = runtime.create_buffer("x", (n,), np.float32)
        buf_y = runtime.create_buffer("y", (n,), np.float32)
        runtime.enqueue_write_buffer(buf_x, np.ones(n, dtype=np.float32))
        runtime.enqueue_nd_range_kernel(
            [base, alt], NDRange(n, 16), {"x": buf_x, "y": buf_y, "alpha": 2.0}
        )
        y = np.zeros(n, dtype=np.float32)
        runtime.enqueue_read_buffer(buf_y, y)
        runtime.finish()
        assert np.all(y == 2.0)

    def test_empty_version_list_rejected(self, machine):
        runtime = SingleDeviceRuntime(machine, DeviceKind.GPU)
        with pytest.raises(ValueError):
            runtime._as_versions([])

    def test_mismatched_names_rejected(self, machine):
        runtime = SingleDeviceRuntime(machine, DeviceKind.GPU)
        a = make_scale_kernel(64, name="a")
        b = make_scale_kernel(64, name="b")
        with pytest.raises(ValueError):
            runtime._as_versions([a, b])


class TestDeviceChoice:
    def test_gpu_faster_for_gpu_friendly_kernel(self):
        from repro.hw.machine import build_machine

        times = {}
        for kind in (DeviceKind.GPU, DeviceKind.CPU):
            machine = build_machine()
            # gpu_eff high, cpu_eff low
            runtime = SingleDeviceRuntime(machine, kind)
            n = 64 * 256
            spec = make_scale_kernel(n, gpu_eff=0.9, cpu_eff=0.1)
            buf_x = runtime.create_buffer("x", (n,), np.float32)
            buf_y = runtime.create_buffer("y", (n,), np.float32)
            runtime.enqueue_write_buffer(buf_x, np.ones(n, dtype=np.float32))
            runtime.enqueue_nd_range_kernel(
                spec, NDRange(n, 16), {"x": buf_x, "y": buf_y, "alpha": 1.0}
            )
            runtime.finish()
            times[kind] = machine.now
        assert times[DeviceKind.GPU] < times[DeviceKind.CPU]

    def test_release_frees_buffers(self, machine):
        runtime, _x, _y = run_program(machine, DeviceKind.GPU)
        used = runtime.device.memory.used
        assert used > 0
        runtime.release()
        assert runtime.device.memory.used == 0
