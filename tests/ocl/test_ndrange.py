"""Unit and property tests for NDRange geometry and flattening."""

import pytest
from hypothesis import given, strategies as st

from repro.ocl.ndrange import NDRange


class TestConstruction:
    def test_1d(self):
        nd = NDRange(128, 16)
        assert nd.num_groups == (8,)
        assert nd.total_groups == 8
        assert nd.total_items == 128
        assert nd.items_per_group == 16

    def test_2d(self):
        nd = NDRange((64, 32), (16, 8))
        assert nd.num_groups == (4, 4)
        assert nd.total_groups == 16

    def test_3d(self):
        nd = NDRange((8, 8, 8), (2, 2, 2))
        assert nd.total_groups == 64

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            NDRange((64, 32), (16,))

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            NDRange(100, 16)

    def test_rank_limits(self):
        with pytest.raises(ValueError):
            NDRange((2, 2, 2, 2), (1, 1, 1, 1))

    def test_equality_and_hash(self):
        a = NDRange((64, 32), (16, 8))
        b = NDRange((64, 32), (16, 8))
        assert a == b
        assert hash(a) == hash(b)
        assert a != NDRange((64, 32), (8, 8))


class TestFlattening:
    def test_matches_paper_figure5(self):
        """5x5 groups: flattened ID walks the fastest dimension first."""
        nd = NDRange((5, 5), (1, 1))
        assert nd.flatten_group((0, 0)) == 0
        assert nd.flatten_group((4, 0)) == 4
        assert nd.flatten_group((0, 1)) == 5
        assert nd.flatten_group((4, 4)) == 24

    def test_round_trip_2d(self):
        nd = NDRange((64, 32), (16, 8))
        for fid in range(nd.total_groups):
            assert nd.flatten_group(nd.unflatten_group(fid)) == fid

    def test_out_of_range_group(self):
        nd = NDRange(128, 16)
        with pytest.raises(ValueError):
            nd.flatten_group((9,))
        with pytest.raises(ValueError):
            nd.unflatten_group(8)

    def test_groups_in_range(self):
        nd = NDRange((4, 4), (1, 1))
        groups = list(nd.groups_in_range(5, 8))
        assert groups == [(1, 1), (2, 1), (3, 1)]

    @given(
        shape=st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6)),
    )
    def test_round_trip_3d_property(self, shape):
        nd = NDRange(shape, (1, 1, 1))
        for fid in range(nd.total_groups):
            assert nd.flatten_group(nd.unflatten_group(fid)) == fid


class TestCoveringSlice:
    def test_1d_slice_is_exact(self):
        nd = NDRange(128, 16)
        sliced = nd.covering_slice(2, 6)
        assert sliced.total_groups == 4
        assert sliced.group_offset == (2,)

    def test_2d_slice_covers_whole_rows(self):
        nd = NDRange((64, 32), (16, 8))  # 4x4 groups
        sliced = nd.covering_slice(5, 7)  # inside the slowest-dim row 1
        assert sliced.group_offset == (0, 1)
        assert sliced.num_groups == (4, 1)

    def test_2d_slice_spanning_rows(self):
        nd = NDRange((64, 32), (16, 8))
        sliced = nd.covering_slice(3, 9)
        assert sliced.group_offset == (0, 0)
        assert sliced.num_groups == (4, 3)

    def test_bad_window(self):
        nd = NDRange(128, 16)
        with pytest.raises(ValueError):
            nd.covering_slice(5, 5)
        with pytest.raises(ValueError):
            nd.covering_slice(0, 9)

    def test_absolute_group_translation(self):
        nd = NDRange((64, 32), (16, 8))
        sliced = nd.covering_slice(5, 7)
        assert sliced.absolute_group((2, 0)) == (2, 1)

    @given(
        nx=st.integers(1, 8),
        ny=st.integers(1, 8),
        data=st.data(),
    )
    def test_slice_contains_window_property(self, nx, ny, data):
        nd = NDRange((nx * 4, ny * 2), (4, 2))
        total = nd.total_groups
        start = data.draw(st.integers(0, total - 1))
        end = data.draw(st.integers(start + 1, total))
        sliced = nd.covering_slice(start, end)
        for fid in range(start, end):
            gid = nd.unflatten_group(fid)
            for g, off, n in zip(gid, sliced.group_offset, sliced.num_groups):
                assert off <= g < off + n
