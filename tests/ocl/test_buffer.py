"""Unit tests for device buffers and their discrete address spaces."""

import numpy as np
import pytest

from repro.hw.memory import OutOfDeviceMemoryError
from repro.ocl.platform import Platform


@pytest.fixture
def gpu(machine):
    return Platform(machine).gpu


@pytest.fixture
def cpu(machine):
    return Platform(machine).cpu


class TestBuffer:
    def test_zero_initialized(self, gpu):
        buf = gpu.create_buffer((4,), np.float32)
        assert np.all(buf.array == 0)

    def test_nbytes(self, gpu):
        buf = gpu.create_buffer((8, 8), np.float64)
        assert buf.nbytes == 8 * 8 * 8

    def test_write_and_read(self, gpu):
        buf = gpu.create_buffer((4,), np.float32)
        data = np.array([1, 2, 3, 4], dtype=np.float32)
        buf.write_from(data)
        out = np.zeros(4, dtype=np.float32)
        buf.read_into(out)
        assert np.array_equal(out, data)

    def test_write_casts_dtype(self, gpu):
        buf = gpu.create_buffer((2,), np.float32)
        buf.write_from(np.array([1.5, 2.5], dtype=np.float64))
        assert buf.array.dtype == np.float32

    def test_discrete_address_spaces(self, gpu, cpu):
        gpu_buf = gpu.create_buffer((4,), np.float32, name="b")
        cpu_buf = cpu.create_buffer((4,), np.float32, name="b")
        gpu_buf.write_from(np.ones(4, dtype=np.float32))
        assert np.all(cpu_buf.array == 0), "device copies must be independent"

    def test_copy_from_same_device(self, gpu):
        a = gpu.create_buffer((4,), np.float32)
        b = gpu.create_buffer((4,), np.float32)
        a.write_from(np.arange(4, dtype=np.float32))
        b.copy_from(a)
        assert np.array_equal(b.array, a.array)

    def test_copy_from_other_device_rejected(self, gpu, cpu):
        a = gpu.create_buffer((4,), np.float32)
        b = cpu.create_buffer((4,), np.float32)
        with pytest.raises(ValueError):
            b.copy_from(a)

    def test_snapshot_is_independent(self, gpu):
        buf = gpu.create_buffer((4,), np.float32)
        snap = buf.snapshot()
        buf.write_from(np.ones(4, dtype=np.float32))
        assert np.all(snap == 0)

    def test_release_frees_memory(self, gpu):
        used_before = gpu.memory.used
        buf = gpu.create_buffer((1024,), np.float32)
        assert gpu.memory.used > used_before
        buf.release()
        assert gpu.memory.used == used_before

    def test_use_after_release(self, gpu):
        buf = gpu.create_buffer((4,), np.float32)
        buf.release()
        with pytest.raises(RuntimeError):
            _ = buf.array

    def test_double_release_is_noop(self, gpu):
        buf = gpu.create_buffer((4,), np.float32)
        buf.release()
        buf.release()

    def test_allocation_respects_capacity(self, machine):
        device = Platform(machine).gpu
        too_big = int(device.memory.capacity) + 1
        with pytest.raises(OutOfDeviceMemoryError):
            device.create_buffer((too_big,), np.uint8)

    def test_partial_region_write(self, gpu):
        buf = gpu.create_buffer((8,), np.float32)
        data = np.arange(8, dtype=np.float32)
        buf.write_from(data, region=slice(2, 5))
        assert np.array_equal(buf.array[2:5], data[2:5])
        assert np.all(buf.array[:2] == 0)
