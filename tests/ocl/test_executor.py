"""Tests for the device-side executor: waves, windows, abort protocol."""

import numpy as np
import pytest

from repro.hw.cost import wg_time
from repro.kernels.transforms import (
    cpu_subkernel_variant,
    gpu_fluidic_variant,
    plain_variant,
)
from repro.ocl.executor import LaunchConfig, StatusBoard
from repro.ocl.kernel import Kernel
from repro.ocl.ndrange import NDRange
from repro.ocl.platform import Platform

from tests.conftest import make_scale_kernel


@pytest.fixture
def platform(machine):
    return Platform(machine)


def launch(machine, device, queue, spec, n, local=16, variant=None,
           config=None):
    variant = variant or plain_variant(spec)
    x = device.create_buffer((n,), np.float32)
    y = device.create_buffer((n,), np.float32)
    x.write_from(np.ones(n, dtype=np.float32))
    kernel = Kernel(variant, {"x": x, "y": y, "alpha": 2.0})
    event = queue.enqueue_nd_range_kernel(kernel, NDRange(n, local), config)
    return event, y


class TestPlainExecution:
    def test_all_groups_executed(self, machine, platform):
        gpu = platform.gpu
        queue = platform.create_context().create_queue(gpu)
        spec = make_scale_kernel(256)
        event, y = launch(machine, gpu, queue, spec, 256)
        machine.run_until(event.done)
        result = event.result
        assert result.executed_groups == 16
        assert result.aborted_groups == 0
        assert np.all(y.array == 2.0)

    def test_wave_count_and_duration(self, machine, platform):
        gpu = platform.gpu
        queue = platform.create_context().create_queue(gpu)
        n_groups = 300  # 3 waves of <=112 on the GPU
        spec = make_scale_kernel(n_groups * 16)
        event, _y = launch(machine, gpu, queue, spec, n_groups * 16)
        machine.run_until(event.done)
        result = event.result
        assert result.waves == 3
        t_wg = wg_time(spec.cost, gpu.spec)
        expected = 3 * (gpu.spec.wave_overhead + t_wg)
        assert result.duration == pytest.approx(expected, rel=1e-6)

    def test_cpu_uses_eight_slots(self, machine, platform):
        cpu = platform.cpu
        queue = platform.create_context().create_queue(cpu)
        spec = make_scale_kernel(32 * 16)
        event, _y = launch(machine, cpu, queue, spec, 32 * 16)
        machine.run_until(event.done)
        assert event.result.waves == 4  # 32 groups / 8 slots

    def test_window_restricts_execution(self, machine, platform):
        gpu = platform.gpu
        queue = platform.create_context().create_queue(gpu)
        spec = make_scale_kernel(256)
        config = LaunchConfig(fid_start=4, fid_end=8)
        event, y = launch(machine, gpu, queue, spec, 256, config=config)
        machine.run_until(event.done)
        assert event.result.executed == [(4, 8)]
        assert np.all(y.array[64:128] == 2.0)
        assert np.all(y.array[:64] == 0)

    def test_empty_window(self, machine, platform):
        gpu = platform.gpu
        queue = platform.create_context().create_queue(gpu)
        spec = make_scale_kernel(256)
        config = LaunchConfig(fid_start=3, fid_end=3)
        event, _y = launch(machine, gpu, queue, spec, 256, config=config)
        machine.run_until(event.done)
        assert event.result.executed_groups == 0

    def test_bad_window_rejected(self):
        nd = NDRange(256, 16)
        with pytest.raises(ValueError):
            LaunchConfig(fid_start=10, fid_end=40).window(nd)


class TestStatusBoard:
    def test_initial_state(self, engine):
        board = StatusBoard(engine, 100)
        assert board.frontier == 100
        assert board.cpu_completed_groups == 0
        assert not board.covered(99)

    def test_update_moves_frontier_down(self, engine):
        board = StatusBoard(engine, 100)
        assert board.update(0.0, 80)
        assert board.covered(80)
        assert not board.covered(79)
        assert board.cpu_completed_groups == 20

    def test_stale_update_discarded(self, engine):
        board = StatusBoard(engine, 100)
        board.update(0.0, 60)
        assert not board.update(1.0, 70)
        assert board.frontier == 60

    def test_finalized_discards(self, engine):
        board = StatusBoard(engine, 100)
        board.finalize()
        assert not board.update(0.0, 10)

    def test_out_of_range_rejected(self, engine):
        board = StatusBoard(engine, 100)
        with pytest.raises(ValueError):
            board.update(0.0, 101)

    def test_gate_fires_on_update(self, engine):
        board = StatusBoard(engine, 100)
        wait = board.gate.wait()
        board.update(0.0, 50)
        assert engine.run(wait) == 50


class TestAbortProtocol:
    def _cooperative_launch(self, machine, platform, n_groups=64,
                            abort_in_loops=True, cover_at=0.0, frontier=0):
        """GPU kernel over ``n_groups`` with a status update arriving
        ``cover_at`` seconds *into the first wave*, claiming groups >=
        ``frontier``."""
        gpu = platform.gpu
        queue = platform.create_context().create_queue(gpu)
        spec = make_scale_kernel(n_groups * 16, gpu_eff=0.5, loop_iters=64)
        board = StatusBoard(machine.engine, n_groups)
        variant = gpu_fluidic_variant(spec, abort_in_loops=abort_in_loops)
        config = LaunchConfig(status_board=board)
        wave_begin = gpu.spec.kernel_launch_overhead + gpu.spec.wave_overhead

        def deliver():
            yield machine.engine.timeout(max(0.0, wave_begin + cover_at))
            board.update(machine.engine.now, frontier)

        machine.engine.process(deliver())
        event, y = launch(machine, gpu, queue, spec, n_groups * 16,
                          variant=variant, config=config)
        machine.run_until(event.done)
        return event.result, y, spec, gpu

    def test_groups_covered_before_start_are_skipped(self, machine, platform):
        result, y, _spec, _gpu = self._cooperative_launch(
            machine, platform, cover_at=-1.0, frontier=32
        )
        assert result.executed == [(0, 32)]
        assert result.aborted_groups == 32
        assert np.all(y.array[: 32 * 16] == 2.0)
        assert np.all(y.array[32 * 16:] == 0)

    def test_full_coverage_aborts_whole_kernel(self, machine, platform):
        result, y, spec, gpu = self._cooperative_launch(
            machine, platform, cover_at=-1.0, frontier=0
        )
        assert result.executed_groups == 0
        assert result.ended_early

    def test_mid_wave_abort_ends_early(self, machine, platform):
        """With in-loop checks, coverage arriving mid-wave terminates the
        wave at the next loop-iteration boundary (section 6.4)."""
        spec = make_scale_kernel(64 * 16, gpu_eff=0.5, loop_iters=64)
        gpu = platform.gpu
        t_wg = wg_time(
            spec.cost, gpu.spec,
            gpu_fluidic_variant(spec).time_multiplier,
        )
        result, _y, _spec, _gpu = self._cooperative_launch(
            machine, platform, abort_in_loops=True,
            cover_at=t_wg * 0.3, frontier=0,
        )
        assert result.ended_early
        assert result.duration < 0.75 * t_wg

    def test_no_inner_checks_run_wave_to_completion(self, machine, platform):
        spec = make_scale_kernel(64 * 16, gpu_eff=0.5, loop_iters=64)
        gpu = platform.gpu
        variant = gpu_fluidic_variant(spec, abort_in_loops=False)
        t_wg = wg_time(spec.cost, gpu.spec, variant.time_multiplier)
        result, _y, _spec, _gpu = self._cooperative_launch(
            machine, platform, abort_in_loops=False,
            cover_at=t_wg * 0.3, frontier=0,
        )
        # The wave was already running: it completes despite the coverage.
        assert result.executed_groups == 64
        assert result.duration >= t_wg

    def test_partial_tail_abort_within_wave(self, machine, platform):
        """Coverage of the wave's tail mid-flight aborts only those groups."""
        spec = make_scale_kernel(64 * 16, gpu_eff=0.5, loop_iters=64)
        gpu = platform.gpu
        t_wg = wg_time(
            spec.cost, gpu.spec, gpu_fluidic_variant(spec).time_multiplier
        )
        result, y, _spec, _gpu = self._cooperative_launch(
            machine, platform, cover_at=t_wg * 0.3, frontier=40
        )
        assert (0, 40) in result.executed
        assert result.aborted_groups == 24

    def test_accounting_invariant(self, machine, platform):
        for frontier in (0, 17, 40, 64):
            result, _y, _s, _g = self._cooperative_launch(
                machine, platform, cover_at=1e-5, frontier=frontier
            )
            assert result.executed_groups + result.aborted_groups == 64


class TestWorkGroupSplitting:
    def test_small_allocation_splits_across_units(self, machine, platform):
        cpu = platform.cpu
        queue = platform.create_context().create_queue(cpu)
        spec = make_scale_kernel(256, cpu_eff=0.5)
        variant = cpu_subkernel_variant(spec, wg_split=True)
        config = LaunchConfig(fid_start=14, fid_end=16, wg_split_allowed=True)
        event, y = launch(machine, cpu, queue, spec, 256,
                          variant=variant, config=config)
        machine.run_until(event.done)
        result = event.result
        assert result.split_used
        assert np.all(y.array[14 * 16:] == 2.0)
        t_wg = wg_time(spec.cost, cpu.spec)
        # Two groups split across eight units beat one serial slot pass.
        assert result.duration < cpu.spec.wave_overhead + t_wg

    def test_split_disabled_without_flag(self, machine, platform):
        cpu = platform.cpu
        queue = platform.create_context().create_queue(cpu)
        spec = make_scale_kernel(256, cpu_eff=0.5)
        variant = cpu_subkernel_variant(spec, wg_split=False)
        config = LaunchConfig(fid_start=14, fid_end=16, wg_split_allowed=True)
        event, _y = launch(machine, cpu, queue, spec, 256,
                           variant=variant, config=config)
        machine.run_until(event.done)
        assert not event.result.split_used

    def test_split_not_used_for_large_allocations(self, machine, platform):
        cpu = platform.cpu
        queue = platform.create_context().create_queue(cpu)
        spec = make_scale_kernel(256, cpu_eff=0.5)
        variant = cpu_subkernel_variant(spec, wg_split=True)
        config = LaunchConfig(fid_start=0, fid_end=16, wg_split_allowed=True)
        event, _y = launch(machine, cpu, queue, spec, 256,
                           variant=variant, config=config)
        machine.run_until(event.done)
        assert not event.result.split_used
