"""Property-based tests of the executor's abort protocol.

Under *arbitrary* monotone status-update schedules, the executor must
(a) account for every work-group exactly once (executed or aborted),
(b) never execute a work-group that was CPU-covered before its wave began,
(c) execute every work-group below the final frontier.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hw.machine import build_machine
from repro.kernels.transforms import gpu_fluidic_variant
from repro.ocl.executor import LaunchConfig, StatusBoard
from repro.ocl.kernel import Kernel
from repro.ocl.ndrange import NDRange
from repro.ocl.platform import Platform

from tests.conftest import make_scale_kernel

N_GROUPS = 64
LOCAL = 16


@settings(max_examples=40, deadline=None)
@given(
    updates=st.lists(
        st.tuples(
            st.floats(0.0, 2.0),            # arrival time as fraction of t_wg
            st.integers(0, N_GROUPS),       # frontier value
        ),
        min_size=0, max_size=6,
    ),
    abort_in_loops=st.booleans(),
)
def test_abort_accounting_invariants(updates, abort_in_loops):
    machine = build_machine()
    platform = Platform(machine)
    gpu = platform.gpu
    queue = platform.create_context().create_queue(gpu)
    spec = make_scale_kernel(N_GROUPS * LOCAL, LOCAL, gpu_eff=0.5,
                             loop_iters=32)
    variant = gpu_fluidic_variant(spec, abort_in_loops=abort_in_loops)
    board = StatusBoard(machine.engine, N_GROUPS)

    t_wg = Kernel(variant, _args(gpu)).wg_seconds(gpu.spec)

    # Make frontier values monotone non-increasing (as real status
    # messages are) and schedule their delivery.
    frontiers = sorted((f for _t, f in updates), reverse=True)
    times = sorted(t for t, _f in updates)
    for at, frontier in zip(times, frontiers):
        def deliver(at=at, frontier=frontier):
            yield machine.engine.timeout(at * t_wg * 3)
            board.update(machine.engine.now, frontier)
        machine.engine.process(deliver())

    x = gpu.create_buffer((N_GROUPS * LOCAL,), np.float32)
    y = gpu.create_buffer((N_GROUPS * LOCAL,), np.float32)
    x.write_from(np.ones(N_GROUPS * LOCAL, dtype=np.float32))
    kernel = Kernel(variant, {"x": x, "y": y, "alpha": 2.0})
    event = queue.enqueue_nd_range_kernel(
        kernel, NDRange(N_GROUPS * LOCAL, LOCAL),
        LaunchConfig(status_board=board),
    )
    machine.run_until(event.done)
    result = event.result

    # (a) exact accounting
    assert result.executed_groups + result.aborted_groups == N_GROUPS
    # executed ranges are disjoint and ordered
    flat = [fid for lo, hi in result.executed for fid in range(lo, hi)]
    assert flat == sorted(set(flat))
    # (c) everything below the final frontier was executed by the GPU
    final_frontier = board.frontier
    for fid in range(min(final_frontier, N_GROUPS)):
        assert fid in set(flat), f"group {fid} below frontier not executed"
    # data check: executed groups wrote their block
    for lo, hi in result.executed:
        block = y.array[lo * LOCAL:hi * LOCAL]
        assert np.all(block == 2.0)


def _args(gpu):
    return {
        "x": gpu.create_buffer((N_GROUPS * LOCAL,), np.float32),
        "y": gpu.create_buffer((N_GROUPS * LOCAL,), np.float32),
        "alpha": 2.0,
    }
