"""Tests for in-order command queues, engines and profiling events."""

import numpy as np
import pytest

from repro.ocl.enums import CommandStatus, CommandType
from repro.ocl.platform import Platform


@pytest.fixture
def platform(machine):
    return Platform(machine)


@pytest.fixture
def gpu_queue(platform):
    return platform.create_context().create_queue(platform.gpu, "q")


class TestInOrderSemantics:
    def test_commands_execute_in_enqueue_order(self, machine, platform, gpu_queue):
        gpu = platform.gpu
        buf = gpu.create_buffer((1024,), np.float32)
        first = gpu_queue.enqueue_write_buffer(buf, np.ones(1024, dtype=np.float32))
        second = gpu_queue.enqueue_read_buffer(buf, np.zeros(1024, dtype=np.float32))
        machine.run_until(second.done)
        assert first.finished <= second.started

    def test_write_then_read_round_trip(self, machine, platform, gpu_queue):
        gpu = platform.gpu
        buf = gpu.create_buffer((16,), np.float32)
        data = np.arange(16, dtype=np.float32)
        out = np.zeros(16, dtype=np.float32)
        gpu_queue.enqueue_write_buffer(buf, data)
        event = gpu_queue.enqueue_read_buffer(buf, out)
        machine.run_until(event.done)
        assert np.array_equal(out, data)

    def test_marker_fences_prior_work(self, machine, platform, gpu_queue):
        gpu = platform.gpu
        buf = gpu.create_buffer((1 << 20,), np.uint8)
        write = gpu_queue.enqueue_write_buffer(buf, np.zeros(1 << 20, dtype=np.uint8))
        marker = gpu_queue.enqueue_marker()
        machine.run_until(marker.done)
        assert write.is_complete

    def test_finish_event_on_empty_queue(self, machine, gpu_queue):
        machine.run_until(gpu_queue.finish_event())

    def test_copy_buffer_command(self, machine, platform, gpu_queue):
        gpu = platform.gpu
        a = gpu.create_buffer((8,), np.float32)
        b = gpu.create_buffer((8,), np.float32)
        gpu_queue.enqueue_write_buffer(a, np.full(8, 3.0, dtype=np.float32))
        event = gpu_queue.enqueue_copy_buffer(a, b)
        machine.run_until(event.done)
        assert np.all(b.array == 3.0)

    def test_callback_runs_in_order(self, machine, platform, gpu_queue):
        gpu = platform.gpu
        buf = gpu.create_buffer((1 << 20,), np.uint8)
        log = []
        gpu_queue.enqueue_write_buffer(buf, np.zeros(1 << 20, dtype=np.uint8))
        event = gpu_queue.enqueue_callback(lambda _q: log.append(machine.now))
        machine.run_until(event.done)
        assert log and log[0] > 0


class TestConcurrentQueues:
    def test_two_queues_overlap_different_engines(self, machine, platform):
        """A kernel-free transfer queue overlaps with compute-queue copies:
        the whole point of FluidiCL's hd/dh queues (paper section 5.4)."""
        gpu = platform.gpu
        context = platform.create_context()
        q1 = context.create_queue(gpu, "transfers")
        q2 = context.create_queue(gpu, "compute")
        big = np.zeros(32 << 20, dtype=np.uint8)
        buf1 = gpu.create_buffer(big.shape, np.uint8)
        buf2 = gpu.create_buffer((1 << 20,), np.float32)
        buf3 = gpu.create_buffer((1 << 20,), np.float32)
        write = q1.enqueue_write_buffer(buf1, big)
        copy = q2.enqueue_copy_buffer(buf2, buf3)
        machine.run_until(machine.engine.all_of([write.done, copy.done]))
        # The copy (compute engine) must not wait for the h2d DMA transfer.
        assert copy.finished < write.finished

    def test_same_engine_contention_serializes(self, machine, platform):
        gpu = platform.gpu
        context = platform.create_context()
        q1 = context.create_queue(gpu, "a")
        q2 = context.create_queue(gpu, "b")
        data = np.zeros(16 << 20, dtype=np.uint8)
        buf1 = gpu.create_buffer(data.shape, np.uint8)
        buf2 = gpu.create_buffer(data.shape, np.uint8)
        w1 = q1.enqueue_write_buffer(buf1, data)
        w2 = q2.enqueue_write_buffer(buf2, data)
        machine.run_until(machine.engine.all_of([w1.done, w2.done]))
        # Both use the single h2d DMA engine: total time is two transfers.
        single = platform.gpu.transfer_time(data.nbytes)
        assert max(w1.finished, w2.finished) >= 2 * single


class TestEvents:
    def test_profiling_timestamps(self, machine, platform, gpu_queue):
        gpu = platform.gpu
        buf = gpu.create_buffer((1 << 20,), np.uint8)
        event = gpu_queue.enqueue_write_buffer(buf, np.zeros(1 << 20, dtype=np.uint8))
        assert event.status is CommandStatus.QUEUED
        machine.run_until(event.done)
        assert event.status is CommandStatus.COMPLETE
        assert event.queued <= event.started <= event.finished
        assert event.duration > 0
        assert event.latency >= event.duration

    def test_duration_before_completion_raises(self, machine, gpu_queue):
        event = gpu_queue.enqueue_marker()
        with pytest.raises(RuntimeError):
            _ = event.duration

    def test_command_type_recorded(self, machine, platform, gpu_queue):
        gpu = platform.gpu
        buf = gpu.create_buffer((4,), np.float32)
        event = gpu_queue.enqueue_write_buffer(buf, np.zeros(4, dtype=np.float32))
        assert event.command_type is CommandType.WRITE_BUFFER

    def test_transfer_stats_updated(self, machine, platform, gpu_queue):
        gpu = platform.gpu
        buf = gpu.create_buffer((1024,), np.uint8)
        event = gpu_queue.enqueue_write_buffer(buf, np.zeros(1024, dtype=np.uint8))
        machine.run_until(event.done)
        assert gpu.stats["bytes_h2d"] == 1024
