"""Semantic tests for the OpenCL-style enumerations."""

from repro.ocl.enums import CommandStatus, CommandType, MemFlag


class TestMemFlag:
    def test_read_write_is_writable(self):
        assert MemFlag.READ_WRITE.kernel_may_write

    def test_write_only_is_writable(self):
        assert MemFlag.WRITE_ONLY.kernel_may_write

    def test_read_only_is_not_writable(self):
        assert not MemFlag.READ_ONLY.kernel_may_write

    def test_flags_combine(self):
        combined = MemFlag.READ_ONLY | MemFlag.WRITE_ONLY
        assert combined.kernel_may_write


class TestStringEnums:
    def test_command_types_stringify(self):
        assert str(CommandType.ND_RANGE_KERNEL) == "ndrange_kernel"
        assert str(CommandType.WRITE_BUFFER) == "write_buffer"

    def test_status_values(self):
        assert CommandStatus.QUEUED.value == "queued"
        assert CommandStatus.COMPLETE.value == "complete"
