"""Tests for the background-load generator."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.runtime import FluidiCLRuntime
from repro.harness.loadgen import BackgroundLoad
from repro.hw.machine import build_machine
from repro.ocl.kernel import Kernel
from repro.ocl.ndrange import NDRange
from repro.ocl.platform import Platform
from repro.kernels.transforms import plain_variant

from tests.conftest import make_scale_kernel


class TestBackgroundLoad:
    def test_validation(self, machine):
        device = Platform(machine).cpu
        with pytest.raises(ValueError):
            BackgroundLoad(device, duty=1.0)
        with pytest.raises(ValueError):
            BackgroundLoad(device, duty=0.5, period=0)

    def test_zero_duty_is_inert(self, machine):
        device = Platform(machine).cpu
        load = BackgroundLoad(device, duty=0.0)
        machine.engine.run(machine.now + 0.01)
        assert load.busy_time == 0.0
        load.stop()  # no-op

    def test_load_slows_command_sequences_proportionally(self):
        """A sequence of kernel commands (like FluidiCL's subkernels)
        interleaves with the load at command boundaries, so its total wall
        time degrades roughly by the fair-share factor.

        A *single* command holds the compute engine for its whole duration
        (only its start is delayed) — which is why FluidiCL's small
        subkernels are what makes load adaptation possible at all.
        """

        def sequence_time(duty, commands=8):
            machine = build_machine()
            platform = Platform(machine)
            cpu = platform.cpu
            queue = platform.create_context().create_queue(cpu)
            load = BackgroundLoad(cpu, duty=duty, period=5e-4)
            spec = make_scale_kernel(4096, cpu_eff=0.5, work_scale=8)
            x = cpu.create_buffer((4096,), np.float32)
            y = cpu.create_buffer((4096,), np.float32)
            kernel = Kernel(plain_variant(spec), {"x": x, "y": y, "alpha": 1.0})
            for _ in range(commands):
                event = queue.enqueue_nd_range_kernel(kernel, NDRange(4096, 16))
            machine.run_until(event.done)
            load.stop()
            return machine.now

        base = sequence_time(0.0)
        loaded = sequence_time(0.75)
        # Fair share at 75% load => ~4x; allow slack for burst granularity.
        assert loaded > 2.5 * base

    def test_stop_lets_engine_drain(self, machine):
        device = Platform(machine).cpu
        load = BackgroundLoad(device, duty=0.5)
        machine.engine.run(machine.now + 0.005)
        load.stop()
        machine.engine.run()  # must terminate (no live infinite process)
        assert load.busy_time > 0

    def test_long_run_duty_is_tick_exact(self):
        """Pre-fix regression: float deficit accounting drifted.

        With a µs-aligned period the fair-share accounting must be exact:
        over one simulated second of uncontended operation the load's
        busy share is *exactly* ``duty`` — the float rendered from the
        integer tick count equals the duty float bit for bit (0.8 s of
        busy time out of 1.0 s).  The pre-PR float implementation summed
        ``busy_time += burst`` and did ``engine.now`` subtractions, so
        the total carried accumulated rounding residue.
        """
        machine = build_machine()
        device = Platform(machine).cpu
        load = BackgroundLoad(device, duty=0.8, period=5e-4)
        machine.engine.run_for(1.0)
        elapsed_ticks = machine.engine.now_ticks
        load.stop()
        machine.engine.run()
        assert load.busy_time == 0.8
        # and the tick ledger carries the duty share exactly (the exact
        # rational value of the float 0.8, not the decimal 4/5)
        assert Fraction(load.busy_ticks, elapsed_ticks) == Fraction(0.8)

    def test_stop_mid_burst_credits_elapsed_portion(self):
        """Pre-fix regression: an interrupt during the burst timeout
        skipped the ``busy_time`` accounting entirely (the ``finally``
        released the slot but the credit line was only reached on normal
        resume), under-reporting occupancy by a whole burst.

        duty=0.5 / period=2 ms bursts occupy [0, 1 ms) and [2 ms, 3 ms);
        stopping at 2.5 ms must credit 1 ms + 0.5 ms = 1.5 ms exactly.
        """
        machine = build_machine()
        device = Platform(machine).cpu
        load = BackgroundLoad(device, duty=0.5, period=2e-3)
        machine.engine.run_for(2.5e-3)
        load.stop()
        machine.engine.run()
        assert load.busy_time == 0.0015

    def test_stop_while_waiting_for_slot_releases_request(self):
        """Stopping a load that is queued behind another compute user must
        cancel its pending request, or the slot would leak when granted."""
        machine = build_machine()
        device = Platform(machine).cpu
        hold = device.compute.request()  # hog the engine from t=0
        machine.engine.run(hold)
        load = BackgroundLoad(device, duty=0.5, period=2e-3)
        machine.engine.run_for(1e-3)
        load.stop()
        machine.engine.run()
        assert load.busy_time == 0.0
        device.compute.release(hold)
        machine.engine.run()
        assert device.compute.in_use == 0
        assert device.compute.queue_length == 0

    def test_fluidicl_stays_correct_under_load(self):
        machine = build_machine()
        runtime = FluidiCLRuntime(machine)
        load = BackgroundLoad(runtime.cpu_device, duty=0.8)
        n = 8192
        spec = make_scale_kernel(n, gpu_eff=0.4, cpu_eff=0.6, work_scale=32.0)
        x = np.arange(n, dtype=np.float32)
        buf_x = runtime.create_buffer("x", (n,), np.float32)
        buf_y = runtime.create_buffer("y", (n,), np.float32)
        runtime.enqueue_write_buffer(buf_x, x)
        runtime.enqueue_nd_range_kernel(
            spec, NDRange(n, 16), {"x": buf_x, "y": buf_y, "alpha": 2.0}
        )
        y = np.zeros(n, dtype=np.float32)
        runtime.enqueue_read_buffer(buf_y, y)
        runtime.finish()
        load.stop()
        assert np.allclose(y, 2.0 * x)
