"""Structural tests of the experiment harness at test scale.

These verify each experiment runs end to end, produces the right columns
and reproduces the *qualitative* claim at tiny problem sizes; the real
numbers come from the benchmark harness at paper scale.
"""

import pytest

from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    fig15_optimizations,
    fig16_socl,
    fig17_chunk_sensitivity,
    fig18_step_sensitivity,
    fig13_overall,
    fig2_split_sweep,
    fig3_syrk_input_sizes,
    run_experiment,
    table1_bicg_kernel_times,
    table2_suite,
    table3_corr_online_profiling,
)
from repro.harness.runner import (
    fluidicl_time,
    measure_app,
    single_device_times,
    socl_time,
)
from repro.polybench import make_app


class TestRunnerHelpers:
    def test_measure_app_validates(self):
        from repro.core.runtime import FluidiCLRuntime

        app = make_app("syrk", "test")
        result = measure_app(app, FluidiCLRuntime)
        assert result.correct
        assert result.elapsed > 0

    def test_single_device_times(self):
        app = make_app("gesummv", "test")
        times = single_device_times(app)
        assert set(times) == {"cpu", "gpu"}
        assert all(t > 0 for t in times.values())

    def test_fluidicl_time_positive(self):
        assert fluidicl_time(make_app("syrk", "test")) > 0

    def test_socl_time_eager(self):
        assert socl_time(make_app("syrk", "test"), "eager") > 0

    def test_socl_time_dmda_calibrates(self):
        assert socl_time(make_app("syrk", "test"), "dmda",
                         calibration_runs=2) > 0

    def test_repeats_validated(self):
        from repro.core.runtime import FluidiCLRuntime

        with pytest.raises(ValueError):
            measure_app(make_app("syrk", "test"), FluidiCLRuntime, repeats=0)


class TestExperimentStructure:
    def test_registry_covers_all_paper_artifacts(self):
        assert set(ALL_EXPERIMENTS) == {
            "fig2", "fig3", "table1", "table2", "fig13", "fig14",
            "fig15", "fig16", "table3", "fig17", "fig18",
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_table2_structure(self):
        result = table2_suite("test")
        assert result.headers[0] == "benchmark"
        assert len(result.rows) == 6

    def test_table1_reproduces_split_preference(self):
        result = table1_bicg_kernel_times("test")
        winners = {row[3] for row in result.rows}
        assert winners == {"cpu", "gpu"}

    def test_fig2_structure(self):
        result = fig2_split_sweep("test")
        assert len(result.rows) == 11
        assert result.headers == ["gpu_share", "2mm", "syrk"]

    def test_fig3_structure(self):
        result = fig3_syrk_input_sizes(small_n=128, large_n=256)
        assert len(result.rows) == 11

    def test_fig13_structure_without_oracle(self):
        result = fig13_overall("test", include_oracle=False)
        assert result.headers == ["benchmark", "cpu", "gpu", "fluidicl"]
        assert len(result.rows) == 6
        assert all(row[3] > 0 for row in result.rows)

    def test_fig15_all_opt_normalized_to_one(self):
        result = fig15_optimizations("test")
        assert all(row[3] == 1.0 for row in result.rows)

    def test_fig16_structure(self):
        result = fig16_socl("test", calibration_runs=2)
        assert "socl_dmda" in result.headers
        assert len(result.rows) == 6

    def test_table3_has_four_configs(self):
        result = table3_corr_online_profiling("test")
        assert [row[0] for row in result.rows] == [
            "gpu_only", "cpu_only", "fluidicl", "fluidicl+profiling",
        ]

    def test_fig17_structure(self):
        result = fig17_chunk_sensitivity(
            "test", fractions=(0.1, 0.5), benchmarks=("syrk",)
        )
        assert result.headers == ["benchmark", "10%", "50%"]

    def test_fig18_structure(self):
        result = fig18_step_sensitivity(
            "test", steps=(0.0, 0.1), benchmarks=("syrk",)
        )
        assert result.headers == ["benchmark", "0%", "10%"]
