"""Unit tests for harness reporting utilities."""

import math

import pytest

from repro.harness.report import ExperimentResult, format_table, geomean


class TestGeomean:
    def test_basic(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_identity(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_matches_log_definition(self):
        values = [0.5, 2.0, 8.0]
        expected = math.exp(sum(math.log(v) for v in values) / 3)
        assert geomean(values) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        table = format_table(["name", "value"], [["x", 1.23456]])
        assert "name" in table
        assert "1.235" in table

    def test_column_alignment(self):
        table = format_table(["a"], [["long-cell"], ["s"]])
        lines = table.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width


class TestExperimentResult:
    def make(self):
        return ExperimentResult(
            "figX", "Example", ["benchmark", "value"],
            rows=[["a", 1.0], ["b", 2.0]],
            notes=["a note"],
        )

    def test_render_includes_everything(self):
        text = self.make().render()
        assert "figX" in text
        assert "Example" in text
        assert "a note" in text

    def test_column(self):
        assert self.make().column("value") == [1.0, 2.0]

    def test_row_by(self):
        assert self.make().row_by("b") == ["b", 2.0]
        with pytest.raises(KeyError):
            self.make().row_by("zzz")

    def test_to_csv(self):
        csv = self.make().to_csv()
        assert csv.splitlines()[0] == "benchmark,value"
        assert "a,1.000" in csv
