"""Tests for timeline extraction — including the §5.5 overlap property."""

import numpy as np
import pytest

from repro.core.runtime import FluidiCLRuntime
from repro.harness.timeline import Span, extract_spans, overlap_seconds, render_gantt
from repro.hw.machine import build_machine
from repro.ocl.ndrange import NDRange
from repro.sim.trace import Tracer

from tests.conftest import make_scale_kernel


class TestSpanMechanics:
    def test_overlap_seconds(self):
        a = Span("q", "k", "a", 0.0, 2.0)
        b = Span("q", "k", "b", 1.0, 3.0)
        assert overlap_seconds(a, b) == pytest.approx(1.0)

    def test_no_overlap(self):
        a = Span("q", "k", "a", 0.0, 1.0)
        b = Span("q", "k", "b", 2.0, 3.0)
        assert overlap_seconds(a, b) == 0.0

    def test_duration(self):
        assert Span("q", "k", "a", 1.0, 2.5).duration == pytest.approx(1.5)

    def test_extract_pairs_in_order(self):
        tracer = Tracer()
        tracer.record(0.0, "cmd_start", {"queue": "q", "type": "x", "kernel": "k"})
        tracer.record(1.0, "cmd_end", {"queue": "q", "type": "x", "kernel": "k"})
        tracer.record(1.0, "cmd_start", {"queue": "q", "type": "x", "kernel": "k"})
        tracer.record(3.0, "cmd_end", {"queue": "q", "type": "x", "kernel": "k"})
        spans = extract_spans(tracer)
        assert [(s.start, s.end) for s in spans] == [(0.0, 1.0), (1.0, 3.0)]

    def test_kind_filter(self):
        tracer = Tracer()
        tracer.record(0.0, "cmd_start", {"queue": "q", "type": "a"})
        tracer.record(1.0, "cmd_end", {"queue": "q", "type": "a"})
        tracer.record(1.0, "cmd_start", {"queue": "q", "type": "b"})
        tracer.record(2.0, "cmd_end", {"queue": "q", "type": "b"})
        assert len(extract_spans(tracer, kinds=["a"])) == 1

    def test_render_empty(self):
        assert "empty" in render_gantt([])

    def test_render_contains_queues(self):
        spans = [Span("alpha", "k", "x", 0.0, 1.0), Span("beta", "k", "y", 0.5, 2.0)]
        chart = render_gantt(spans)
        assert "alpha" in chart and "beta" in chart
        assert "#" in chart


class TestFluidiclOverlap:
    def _traced_run(self):
        machine = build_machine(trace=True)
        runtime = FluidiCLRuntime(machine)
        n = 16384
        spec = make_scale_kernel(n, gpu_eff=0.4, cpu_eff=0.6, work_scale=32.0)
        x = np.ones(n, dtype=np.float32)
        buf_x = runtime.create_buffer("x", (n,), np.float32)
        buf_y = runtime.create_buffer("y", (n,), np.float32)
        runtime.enqueue_write_buffer(buf_x, x)
        runtime.enqueue_nd_range_kernel(
            spec, NDRange(n, 16), {"x": buf_x, "y": buf_y, "alpha": 2.0}
        )
        out = np.zeros(n, dtype=np.float32)
        runtime.enqueue_read_buffer(buf_y, out)
        runtime.finish()
        runtime.drain()
        return machine, runtime

    def test_cpu_results_transfer_overlaps_gpu_compute(self):
        """§5.5: hd-queue transfers proceed while the GPU kernel runs."""
        machine, _runtime = self._traced_run()
        spans = extract_spans(machine.tracer)
        gpu_kernels = [
            s for s in spans
            if s.queue == "fluidicl-app" and s.kind == "ndrange_kernel"
            and "merge" not in s.label
        ]
        hd_transfers = [
            s for s in spans
            if s.queue == "fluidicl-hd" and s.kind == "write_buffer"
        ]
        assert gpu_kernels and hd_transfers
        overlapped = sum(
            overlap_seconds(k, t) for k in gpu_kernels for t in hd_transfers
        )
        assert overlapped > 0, "CPU->GPU shipping must overlap GPU compute"

    def test_cpu_and_gpu_kernels_overlap(self):
        """The essence of cooperative execution: both devices compute at
        the same simulated time."""
        machine, _runtime = self._traced_run()
        spans = extract_spans(machine.tracer, kinds=["ndrange_kernel"])
        gpu = [s for s in spans if s.queue == "fluidicl-app"]
        cpu = [s for s in spans if s.queue == "fluidicl-cpu"]
        assert gpu and cpu
        overlapped = sum(overlap_seconds(g, c) for g in gpu for c in cpu)
        assert overlapped > 0

    def test_gantt_renders_all_queues(self):
        machine, _runtime = self._traced_run()
        chart = render_gantt(extract_spans(machine.tracer))
        for queue in ("fluidicl-app", "fluidicl-cpu", "fluidicl-hd"):
            assert queue in chart
