"""Tests for ``python -m repro.harness serve`` (the SLO load-test CLI)."""

import json

import pytest

from repro.harness.__main__ import main
from repro.harness.serve_cli import _parse_tenants, serve_main


class TestParseTenants:
    def test_full_spec(self):
        tenants = _parse_tenants("acme:bicg:64:interactive:3.0:2.0,"
                                 "beta:gemm:16:best-effort")
        assert [t.name for t in tenants] == ["acme", "beta"]
        assert tenants[0].weight == 3.0 and tenants[0].share == 2.0
        assert tenants[1].weight == 1.0 and tenants[1].share == 1.0

    def test_malformed_spec_rejected(self):
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_tenants("acme:bicg")


class TestServeCli:
    def test_smoke_exits_zero(self, capsys):
        code = serve_main(["--requests", "80", "--n-tenants", "2",
                           "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tenant0" in out and "tenant1" in out
        assert "coherence: OK" in out
        assert "digest:" in out

    def test_dispatch_through_harness_main(self, capsys):
        assert main(["serve", "--requests", "40", "--n-tenants", "1"]) == 0
        assert "coherence: OK" in capsys.readouterr().out

    def test_json_to_stdout(self, capsys):
        code = serve_main(["--requests", "40", "--n-tenants", "1",
                           "--json", "-"])
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["ok"] is True
        assert payload["totals"]["submitted"] == 40

    def test_json_to_file(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        code = serve_main(["--requests", "40", "--n-tenants", "1",
                           "--json", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["digest"]
        assert f"report written to {path}" in capsys.readouterr().out

    def test_shed_gate_breach_exits_one(self, capsys):
        code = serve_main(["--requests", "150", "--n-tenants", "1",
                           "--utilization", "3.0", "--depth", "2",
                           "--inflight", "1", "--max-shed-rate", "0.0"])
        assert code == 1
        assert "shed-rate gate breached" in capsys.readouterr().err

    def test_explicit_tenant_mix(self, capsys):
        code = serve_main(["--requests", "40",
                           "--tenants", "solo:bicg:64:interactive"])
        assert code == 0
        assert "solo" in capsys.readouterr().out

    def test_faults_compose(self, capsys):
        code = serve_main(["--requests", "60", "--n-tenants", "1",
                           "--faults", "1", "--fault-n", "2"])
        assert code == 0
        assert "faults injected: 2" in capsys.readouterr().out
