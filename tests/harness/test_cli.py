"""Tests for the ``python -m repro.harness`` command-line interface."""

import json

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "GESUMMV" in out
        assert "harness wall time" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table2", "table1"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "table1" in out

    def test_extension_experiment_dispatches(self, capsys):
        assert main(["ext_location"]) == 0
        assert "ext_location" in capsys.readouterr().out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["fig99"])

    def test_help_lists_extensions(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "ext_phi" in out


class TestTraceSubcommand:
    def test_smoke_emits_valid_chrome_trace(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "--smoke", "--out", str(out_path)]) == 0
        printed = capsys.readouterr().out
        assert "== trace: gesummv @ test" in printed
        assert "metrics:" in printed
        with open(out_path, encoding="utf-8") as handle:
            trace = json.load(handle)
        events = trace["traceEvents"]
        assert events
        assert {e["ph"] for e in events} <= {"X", "i", "M"}
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        assert all(
            {"name", "ph", "ts", "dur", "pid", "tid"} <= set(e)
            for e in complete
        )
        assert "metrics" in trace["otherData"]

    def test_no_gantt_skips_chart(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "--smoke", "--no-gantt",
                     "--out", str(out_path)]) == 0
        printed = capsys.readouterr().out
        assert "busy" not in printed  # Gantt rows end with "NN% busy"
