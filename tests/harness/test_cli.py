"""Tests for the ``python -m repro.harness`` command-line interface."""

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert "GESUMMV" in out
        assert "harness wall time" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table2", "table1"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "table1" in out

    def test_extension_experiment_dispatches(self, capsys):
        assert main(["ext_location"]) == 0
        assert "ext_location" in capsys.readouterr().out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["fig99"])

    def test_help_lists_extensions(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "ext_phi" in out
