"""The named-scenario runner: registry sanity, listing, runs, traces."""

import json
import os

from repro.harness.__main__ import main
from repro.harness.scenarios_cli import SCENARIOS, scenarios_main
from repro.hw.machine import MACHINE_PRESETS
from repro.polybench.suite import EXTENDED_SUITE

IRREGULAR = ("spmv", "histogram", "bfs", "scan")


class TestRegistry:
    def test_every_scenario_targets_a_registered_app(self):
        for scenario in SCENARIOS.values():
            assert scenario.config.app in EXTENDED_SUITE

    def test_machines_are_known_presets(self):
        for scenario in SCENARIOS.values():
            machine = scenario.config.machine
            assert machine == "default" or machine in MACHINE_PRESETS

    def test_every_irregular_app_has_a_scenario(self):
        apps = {s.config.app for s in SCENARIOS.values()}
        assert set(IRREGULAR) <= apps

    def test_fault_axis_is_exercised(self):
        kinds = {f.kind for s in SCENARIOS.values() for f in s.config.faults}
        assert len(kinds) >= 3, "scenarios should span the fault taxonomy"

    def test_descriptions_and_seeds_are_distinct(self):
        seeds = [s.config.seed for s in SCENARIOS.values()]
        assert len(set(seeds)) == len(seeds)
        assert all(s.description for s in SCENARIOS.values())


class TestCli:
    def test_list_prints_every_scenario(self, capsys):
        assert scenarios_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_unknown_scenario_is_an_error(self, capsys):
        assert scenarios_main(["no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_single_run_passes_and_writes_trace(self, tmp_path, capsys):
        trace_dir = str(tmp_path / "traces")
        rc = scenarios_main(["scan-transfer-retry",
                             "--trace-dir", trace_dir])
        assert rc == 0
        out = capsys.readouterr().out
        assert "scan-transfer-retry" in out and "0 failed" in out
        trace_file = os.path.join(trace_dir, "scan-transfer-retry.trace.json")
        assert os.path.exists(trace_file)
        with open(trace_file, encoding="utf-8") as fh:
            trace = json.load(fh)
        assert trace["traceEvents"], "the trace artifact must not be empty"

    def test_loss_scenario_degrades_gracefully(self, capsys):
        rc = scenarios_main(["spmv-gpu-loss-cpu2gpu"])
        assert rc == 0
        assert "FAIL" not in capsys.readouterr().out

    def test_main_dispatches_scenarios(self, capsys):
        assert main(["scenarios", "--list"]) == 0
        assert "spmv-skew-default" in capsys.readouterr().out
