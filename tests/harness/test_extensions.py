"""Structural tests of the extension experiments (small/test scale)."""

import pytest

from repro.harness.extensions import (
    EXTENSION_EXPERIMENTS,
    ablation_buffer_pool,
    ablation_location_tracking,
    ablation_wg_split,
    extended_overall,
    what_if_xeon_phi,
)
from repro.harness.experiments import run_experiment
from repro.harness.workloads import MatrixScaleApp


class TestWorkloads:
    def test_matscale_correct_on_fluidicl(self):
        from repro.core.runtime import FluidiCLRuntime
        from repro.hw.machine import build_machine

        app = MatrixScaleApp(n=128)
        machine = build_machine()
        result = app.execute(FluidiCLRuntime(machine))
        assert result.correct

    def test_matscale_correct_on_single_device(self):
        from repro.hw.machine import build_machine
        from repro.hw.specs import DeviceKind
        from repro.ocl.runtime import SingleDeviceRuntime

        app = MatrixScaleApp(n=128)
        machine = build_machine()
        result = app.execute(SingleDeviceRuntime(machine, DeviceKind.CPU))
        assert result.correct

    def test_matscale_size_validation(self):
        with pytest.raises(ValueError):
            MatrixScaleApp(n=100)


class TestExtensionExperiments:
    def test_registry(self):
        assert set(EXTENSION_EXPERIMENTS) == {
            "ext_pool", "ext_wgsplit", "ext_location", "ext_suite",
            "ext_phi", "ext_load", "ext_machines", "ext_faults",
        }

    def test_run_experiment_dispatches_extensions(self):
        result = run_experiment("ext_location")
        assert result.experiment_id == "ext_location"

    def test_pool_ablation_small_scale(self):
        result = ablation_buffer_pool("test")
        assert len(result.rows) == 6
        assert all(row[1] >= 0.99 for row in result.rows)

    def test_wg_split_ablation_shows_effect(self):
        result = ablation_wg_split(sizes=((1024, 256),))
        assert result.rows[0][1] == 4  # groups
        assert result.rows[0][2] > 1.1

    def test_location_ablation_counts_traffic(self):
        result = ablation_location_tracking(n=256)
        rows = {row[0]: row for row in result.rows}
        assert rows["tracking_off"][2] >= rows["tracking_on"][2]

    def test_extended_overall_small(self):
        result = extended_overall("test")
        assert [row[0] for row in result.rows] == [
            "atax", "mvt", "gemm", "3mm", "spmv", "histogram", "bfs", "scan",
        ]

    def test_phi_what_if_runs_and_is_correct(self):
        result = what_if_xeon_phi(scale="test", benchmarks=("syrk",))
        assert len(result.rows) == 1
        assert all(value > 0 for value in result.rows[0][1:])


class TestXeonPhiPreset:
    def test_preset_shape(self):
        from repro.hw.specs import XEON_PHI_5110P, DeviceKind

        assert XEON_PHI_5110P.kind is DeviceKind.CPU
        assert XEON_PHI_5110P.compute_units == 240
        assert XEON_PHI_5110P.peak_flops > 1e12
