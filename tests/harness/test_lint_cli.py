"""``python -m repro.harness lint`` — exit codes, output shapes, self-test."""

import json
import os

from repro.harness.__main__ import main as harness_main
from repro.harness.lint_cli import _example_factories, lint_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
EXAMPLES = os.path.join(REPO_ROOT, "examples")


class TestLintMain:
    def test_suite_lints_clean(self, capsys):
        code = lint_main(["--examples", EXAMPLES])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 finding(s)" in out
        assert "0 not fluidic-safe" in out

    def test_single_app_subset(self, capsys):
        code = lint_main(["--apps", "gemm", "--no-examples"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 kernel(s) analyzed" in out

    def test_verbose_lists_clean_kernels(self, capsys):
        code = lint_main(["--apps", "gemm", "--no-examples", "--verbose"])
        out = capsys.readouterr().out
        assert code == 0
        assert "gemm_kernel" in out

    def test_disabled_aborts_surface_fk301(self, capsys):
        code = lint_main(["--no-abort-in-loops", "--no-examples"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FK301" in out

    def test_json_output(self, capsys):
        code = lint_main(["--apps", "gemm", "--no-examples", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload[0]["kernel"] == "gemm_kernel"
        assert payload[0]["fluidic_safe"] is True
        assert payload[0]["findings"] == []

    def test_known_bad_self_test(self, capsys):
        code = lint_main(["--known-bad"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MISSED" not in out
        assert "expected=FK101" in out

    def test_known_bad_json(self, capsys):
        code = lint_main(["--known-bad", "--json"])
        rows = json.loads(capsys.readouterr().out)
        assert code == 0
        assert all(row["caught"] for row in rows)

    def test_dispatch_through_harness_main(self, capsys):
        code = harness_main(["lint", "--apps", "gemm", "--no-examples"])
        assert code == 0
        assert "analyzed" in capsys.readouterr().out


class TestExampleDiscovery:
    def test_finds_example_kernel_factories(self):
        factories = dict(_example_factories(EXAMPLES))
        assert "custom_kernel.py:smooth_kernel" in factories
        assert "custom_kernel.py:smooth_kernel_cpu_tuned" in factories
        spec = factories["custom_kernel.py:smooth_kernel"]()
        assert spec.name == "smooth"

    def test_missing_directory_is_empty(self):
        assert _example_factories("/nonexistent/dir") == []
