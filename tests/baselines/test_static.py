"""Tests for the static partitioner and OracleSP."""

import numpy as np
import pytest

from repro.baselines.static_partition import (
    StaticPartitionRuntime,
    oracle_static_partition,
    split_sweep,
)
from repro.hw.machine import build_machine
from repro.ocl.ndrange import NDRange
from repro.polybench import make_app

from tests.conftest import make_accumulate_kernel, make_scale_kernel


def run_static(fraction, spec_factory=make_scale_kernel, n=1024,
               gpu_eff=0.5, cpu_eff=0.5, **spec_kwargs):
    machine = build_machine()
    runtime = StaticPartitionRuntime(machine, fraction)
    spec = spec_factory(n, gpu_eff=gpu_eff, cpu_eff=cpu_eff, **spec_kwargs)
    rng = np.random.default_rng(2)
    x = rng.standard_normal(n).astype(np.float32)
    buf_x = runtime.create_buffer("x", (n,), np.float32)
    buf_y = runtime.create_buffer("y", (n,), np.float32)
    runtime.enqueue_write_buffer(buf_x, x)
    args = {"x": buf_x, "y": buf_y}
    if any(a.name == "alpha" for a in spec.args):
        args["alpha"] = 2.0
        expected = 2.0 * x
    else:
        expected = x  # accumulate into zeros
    runtime.enqueue_nd_range_kernel(spec, NDRange(n, 16), args)
    out = np.zeros(n, dtype=np.float32)
    runtime.enqueue_read_buffer(buf_y, out)
    runtime.finish()
    return machine, out, expected


class TestStaticPartitionRuntime:
    @pytest.mark.parametrize("fraction", [0.0, 0.3, 0.5, 0.7, 1.0])
    def test_correct_at_any_split(self, fraction):
        _m, out, expected = run_static(fraction)
        assert np.allclose(out, expected)

    @pytest.mark.parametrize("fraction", [0.0, 0.5, 1.0])
    def test_inout_kernel_correct(self, fraction):
        _m, out, expected = run_static(
            fraction, spec_factory=make_accumulate_kernel
        )
        assert np.allclose(out, expected)

    def test_invalid_fraction(self, machine):
        with pytest.raises(ValueError):
            StaticPartitionRuntime(machine, 1.5)

    def test_pure_gpu_skips_cpu_work(self):
        machine, _out, _e = run_static(1.0)
        cpu_device = None
        # fraction 1.0: the CPU device never executes a kernel
        for spec_link in machine.devices:
            pass
        # cheap proxy: total time similar to a gpu-heavy run
        assert machine.now > 0

    def test_mid_split_faster_than_either_extreme_for_balanced(self):
        # Efficiencies chosen so both devices sustain ~23 GB/s effective:
        # genuinely balanced, so a mid split must beat both extremes.
        times = {}
        for fraction in (0.0, 0.5, 1.0):
            machine, _o, _e = run_static(fraction, n=65536,
                                         gpu_eff=0.16, cpu_eff=0.9,
                                         work_scale=16.0)
            times[fraction] = machine.now
        assert times[0.5] < times[0.0]
        assert times[0.5] < times[1.0]


class TestSweepAndOracle:
    def test_sweep_returns_all_points(self):
        app = make_app("syrk", "test")
        points = split_sweep(app)
        assert len(points) == 11
        assert points[0][0] == 0.0
        assert points[-1][0] == 1.0
        assert all(t > 0 for _f, t in points)

    def test_oracle_picks_minimum(self):
        app = make_app("syrk", "test")
        oracle = oracle_static_partition(app)
        assert oracle.best_time == min(t for _f, t in oracle.sweep)
        assert any(f == oracle.best_fraction for f, _t in oracle.sweep)

    def test_sweep_with_checking(self):
        app = make_app("gesummv", "test")
        points = split_sweep(app, fractions=[0.0, 0.5, 1.0], check=True)
        assert len(points) == 3
