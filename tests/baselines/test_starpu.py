"""Tests for the StarPU-like task runtime and the SOCL facade."""

import numpy as np
import pytest

from repro.baselines.starpu import (
    PerfModel,
    SoclRuntime,
    calibrate_perfmodel,
)
from repro.baselines.starpu.tasks import DataHandle
from repro.hw.machine import build_machine
from repro.ocl.ndrange import NDRange
from repro.polybench import make_app

from tests.conftest import make_scale_kernel


def socl_program(runtime, n=512, gpu_eff=0.5, cpu_eff=0.5, kernels=1):
    spec = make_scale_kernel(n, gpu_eff=gpu_eff, cpu_eff=cpu_eff)
    x = np.arange(n, dtype=np.float32)
    buf_x = runtime.create_buffer("x", (n,), np.float32)
    buf_y = runtime.create_buffer("y", (n,), np.float32)
    runtime.enqueue_write_buffer(buf_x, x)
    for _ in range(kernels):
        runtime.enqueue_nd_range_kernel(
            spec, NDRange(n, 16), {"x": buf_x, "y": buf_y, "alpha": 2.0}
        )
    out = np.zeros(n, dtype=np.float32)
    runtime.enqueue_read_buffer(buf_y, out)
    runtime.finish()
    return out, 2.0 * x


class TestDataHandle:
    def test_registration(self, engine):
        handle = DataHandle(engine, "h", (8,), np.float32)
        assert handle.valid_on_host
        assert handle.nbytes == 32

    def test_device_buffers_lazy(self, machine):
        from repro.ocl.platform import Platform

        platform = Platform(machine)
        handle = DataHandle(machine.engine, "h", (8,), np.float32)
        assert not handle.is_valid_on(platform.gpu)
        buf = handle.buffer_on(platform.gpu)
        assert buf is handle.buffer_on(platform.gpu)  # cached

    def test_invalidate_everywhere_but(self, machine):
        from repro.ocl.platform import Platform

        platform = Platform(machine)
        handle = DataHandle(machine.engine, "h", (8,), np.float32)
        handle.buffer_on(platform.gpu)
        handle.mark_valid_on(platform.gpu)
        handle.invalidate_everywhere_but(platform.gpu)
        assert handle.is_valid_on(platform.gpu)
        assert not handle.valid_on_host


class TestPerfModel:
    def test_record_and_predict(self):
        model = PerfModel()
        model.record("k", 100, "cpu", 1.0)
        model.record("k", 100, "cpu", 3.0)
        assert model.predict("k", 100, "cpu") == pytest.approx(2.0)

    def test_unknown_returns_none(self):
        assert PerfModel().predict("k", 100, "gpu") is None

    def test_is_calibrated_for(self):
        model = PerfModel()
        model.record("k", 100, "cpu", 1.0)
        assert not model.is_calibrated_for("k", 100, ["cpu", "gpu"])
        model.record("k", 100, "gpu", 1.0)
        assert model.is_calibrated_for("k", 100, ["cpu", "gpu"])

    def test_calibrate_covers_both_workers(self):
        app = make_app("bicg", "test")
        model = PerfModel()

        def run_once(sched, m, offset=0):
            machine = build_machine()
            runtime = SoclRuntime(machine, sched, model=m,
                                  scheduler_offset=offset)
            app.execute(runtime, check=False)

        calibrate_perfmodel(run_once, model, runs=2)
        # Both kernels must have samples on both workers.
        assert model.calibrated_entries == 4


class TestSoclCorrectness:
    @pytest.mark.parametrize("scheduler", ["eager", "dmda", "roundrobin"])
    def test_single_kernel(self, machine, scheduler):
        runtime = SoclRuntime(machine, scheduler)
        out, expected = socl_program(runtime)
        assert np.allclose(out, expected)

    def test_repeated_kernels(self, machine):
        runtime = SoclRuntime(machine, "eager")
        out, expected = socl_program(runtime, kernels=3)
        assert np.allclose(out, expected)

    def test_unknown_scheduler(self, machine):
        with pytest.raises(KeyError):
            SoclRuntime(machine, "nonsense")

    @pytest.mark.parametrize("name", ["bicg", "syrk", "gesummv"])
    def test_apps_run_correctly_eager(self, name):
        app = make_app(name, "test")
        machine = build_machine()
        runtime = SoclRuntime(machine, "eager")
        result = app.execute(runtime)
        assert result.correct


class TestScheduling:
    def test_eager_first_task_goes_to_cpu(self, machine):
        """StarPU numbers CPU workers first: with both idle, the CPU gets
        the first task (which is how eager mis-schedules GPU-bound apps)."""
        runtime = SoclRuntime(machine, "eager")
        socl_program(runtime, kernels=1)
        cpu_worker = runtime.workers[0]
        assert cpu_worker.kind == "cpu"
        assert cpu_worker.tasks_executed == 1

    def test_dmda_picks_faster_device_when_calibrated(self):
        """A strongly GPU-biased kernel must land on the GPU under dmda."""
        app_n, gpu_eff, cpu_eff = 4096, 0.9, 0.01
        model = PerfModel()

        def run_once(sched, m, offset=0):
            machine = build_machine()
            runtime = SoclRuntime(machine, sched, model=m,
                                  scheduler_offset=offset)
            socl_program(runtime, n=app_n, gpu_eff=gpu_eff, cpu_eff=cpu_eff)

        calibrate_perfmodel(run_once, model, runs=4)
        machine = build_machine()
        runtime = SoclRuntime(machine, "dmda", model=model)
        socl_program(runtime, n=app_n, gpu_eff=gpu_eff, cpu_eff=cpu_eff)
        gpu_worker = runtime.workers[1]
        assert gpu_worker.kind == "gpu"
        assert gpu_worker.tasks_executed == 1

    def test_independent_tasks_run_concurrently(self, machine):
        """Two independent kernels on disjoint data use both workers."""
        runtime = SoclRuntime(machine, "eager")
        n = 512
        spec_a = make_scale_kernel(n, name="ka")
        spec_b = make_scale_kernel(n, name="kb")
        bufs = {
            name: runtime.create_buffer(name, (n,), np.float32)
            for name in ("x1", "y1", "x2", "y2")
        }
        data = np.ones(n, dtype=np.float32)
        runtime.enqueue_write_buffer(bufs["x1"], data)
        runtime.enqueue_write_buffer(bufs["x2"], data)
        runtime.enqueue_nd_range_kernel(
            spec_a, NDRange(n, 16),
            {"x": bufs["x1"], "y": bufs["y1"], "alpha": 2.0},
        )
        runtime.enqueue_nd_range_kernel(
            spec_b, NDRange(n, 16),
            {"x": bufs["x2"], "y": bufs["y2"], "alpha": 2.0},
        )
        runtime.finish()
        assert runtime.workers[0].tasks_executed == 1
        assert runtime.workers[1].tasks_executed == 1

    def test_dependent_tasks_respect_order(self, machine):
        """RAW dependency: the second kernel must see the first's output."""
        runtime = SoclRuntime(machine, "eager")
        n = 256
        spec = make_scale_kernel(n)
        buf_x = runtime.create_buffer("x", (n,), np.float32)
        buf_y = runtime.create_buffer("y", (n,), np.float32)
        buf_z = runtime.create_buffer("z", (n,), np.float32)
        runtime.enqueue_write_buffer(buf_x, np.ones(n, dtype=np.float32))
        runtime.enqueue_nd_range_kernel(
            spec, NDRange(n, 16), {"x": buf_x, "y": buf_y, "alpha": 2.0}
        )
        runtime.enqueue_nd_range_kernel(
            spec, NDRange(n, 16), {"x": buf_y, "y": buf_z, "alpha": 3.0}
        )
        out = np.zeros(n, dtype=np.float32)
        runtime.enqueue_read_buffer(buf_z, out)
        runtime.finish()
        assert np.allclose(out, 6.0)

    def test_ping_pong_transfers_counted(self, machine):
        """Alternating workers on dependent kernels forces data movement."""
        runtime = SoclRuntime(machine, "roundrobin")
        n = 256
        spec = make_scale_kernel(n)
        buf_x = runtime.create_buffer("x", (n,), np.float32)
        buf_y = runtime.create_buffer("y", (n,), np.float32)
        buf_z = runtime.create_buffer("z", (n,), np.float32)
        runtime.enqueue_write_buffer(buf_x, np.ones(n, dtype=np.float32))
        runtime.enqueue_nd_range_kernel(
            spec, NDRange(n, 16), {"x": buf_x, "y": buf_y, "alpha": 2.0}
        )
        runtime.enqueue_nd_range_kernel(
            spec, NDRange(n, 16), {"x": buf_y, "y": buf_z, "alpha": 3.0}
        )
        runtime.finish()
        tasks = runtime.tasks
        assert tasks[1].transfer_bytes > 0  # y had to move between devices


class TestWorkStealing:
    def test_ws_correct_on_apps(self):
        for name in ("bicg", "syrk"):
            app = make_app(name, "test")
            machine = build_machine()
            runtime = SoclRuntime(machine, "ws")
            result = app.execute(runtime)
            assert result.correct, name

    def test_ws_spreads_independent_tasks(self, machine):
        runtime = SoclRuntime(machine, "ws")
        n = 512
        buffers = {
            name: runtime.create_buffer(name, (n,), np.float32)
            for name in ("x1", "y1", "x2", "y2")
        }
        data = np.ones(n, dtype=np.float32)
        runtime.enqueue_write_buffer(buffers["x1"], data)
        runtime.enqueue_write_buffer(buffers["x2"], data)
        for i, (x, y) in enumerate((("x1", "y1"), ("x2", "y2"))):
            spec = make_scale_kernel(n, name=f"k{i}")
            runtime.enqueue_nd_range_kernel(
                spec, NDRange(n, 16),
                {"x": buffers[x], "y": buffers[y], "alpha": 2.0},
            )
        runtime.finish()
        assert all(w.tasks_executed == 1 for w in runtime.workers)

    def test_ws_steals_queued_work(self, machine):
        """Four independent tasks, two workers: stealing keeps both busy."""
        runtime = SoclRuntime(machine, "ws")
        n = 512
        for i in range(4):
            x = runtime.create_buffer(f"x{i}", (n,), np.float32)
            y = runtime.create_buffer(f"y{i}", (n,), np.float32)
            runtime.enqueue_write_buffer(x, np.ones(n, dtype=np.float32))
            runtime.enqueue_nd_range_kernel(
                make_scale_kernel(n, name=f"k{i}"), NDRange(n, 16),
                {"x": x, "y": y, "alpha": 1.0},
            )
        runtime.finish()
        executed = [w.tasks_executed for w in runtime.workers]
        assert sum(executed) == 4
        assert min(executed) >= 1
