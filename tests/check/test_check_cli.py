"""Tests for ``python -m repro.harness check``."""

import os

from repro.harness.__main__ import main
from repro.harness.check_cli import check_main


class TestCheckCli:
    def test_clean_campaign_exits_zero(self, capsys):
        assert check_main(["--seeds", "3", "--apps", "gesummv,bicg"]) == 0
        out = capsys.readouterr().out
        assert "seed 0" in out
        assert "0 failed" in out
        assert "invariant checks" in out

    def test_dispatch_through_harness_main(self, capsys):
        assert main(["check", "--seeds", "1", "--apps", "gesummv"]) == 0
        assert "gesummv" in capsys.readouterr().out

    def test_budget_skips_remaining_seeds(self, capsys):
        code = check_main(["--seeds", "5", "--budget-s", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "skipping remaining 5 seed(s)" in out
        assert "0 seed(s), 0 failed" in out

    def test_seed_range_is_resumable(self, capsys):
        assert check_main(["--seeds", "2", "--start-seed", "7",
                           "--apps", "gesummv"]) == 0
        out = capsys.readouterr().out
        assert "seed 7" in out and "seed 8" in out

    def test_known_bad_fails_shrinks_and_writes_reproducer(
            self, capsys, tmp_path):
        out_file = tmp_path / "reproducer.py"
        code = check_main([
            "--seeds", "1", "--apps", "gesummv",
            "--known-bad", "overlap-window",
            "--reproducer-out", str(out_file),
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "cpu-front-partition" in out
        assert "shrinking failing seed 0" in out
        assert out_file.exists()
        source = out_file.read_text()
        assert "FuzzConfig" in source
        assert "overlap-window" in source
        compile(source, str(out_file), "exec")

    def test_known_bad_without_shrinking(self, capsys):
        code = check_main([
            "--seeds", "1", "--apps", "gesummv",
            "--known-bad", "stale-read", "--no-shrink",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "shrinking disabled" in out

    def test_reproducer_dir_is_created(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = check_main([
            "--seeds", "1", "--apps", "gesummv",
            "--known-bad", "frontier-jump",
        ])
        assert code == 1
        assert os.path.exists(os.path.join("out", "check-reproducer.py"))
