"""Unit tests for the coherence monitor's invariant catalog.

Each test feeds a synthetic event stream through a real
:class:`~repro.obs.recorder.EventRecorder` (so the category → kind mapping
and the listener hook are exercised too) and asserts which invariant, if
any, trips.
"""

import pytest

from repro.check import CoherenceMonitor, InvariantViolationError
from repro.obs.recorder import EventRecorder


def make_monitor():
    recorder = EventRecorder()
    monitor = CoherenceMonitor().attach(recorder)
    return recorder, monitor


def feed(recorder, category, ts=0.0, **attrs):
    recorder.record(ts, category, attrs)


def feed_clean_kernel(recorder, kernel_id=1, groups=10, path="merged",
                      buffers=("y",)):
    """A well-formed cooperative kernel: two CPU windows, merge, commit."""
    feed(recorder, "kernel_begin", kernel_id=kernel_id, kernel="k",
         groups=groups)
    feed(recorder, "subkernel_launch", kernel_id=kernel_id,
         fid_start=groups - 2, fid_end=groups)
    feed(recorder, "status_delivery", kernel_id=kernel_id,
         frontier=groups - 2, accepted=True)
    feed(recorder, "subkernel_launch", kernel_id=kernel_id,
         fid_start=groups - 4, fid_end=groups - 2)
    feed(recorder, "status_delivery", kernel_id=kernel_id,
         frontier=groups - 4, accepted=True)
    for name in buffers:
        feed(recorder, "merge_enqueued", kernel_id=kernel_id, buffer=name,
             cpu_groups=4)
        feed(recorder, "merge_done", kernel_id=kernel_id, buffer=name,
             nbytes_merged=16, nbytes_buffer=64, cancelled=False)
    feed(recorder, "commit", kernel_id=kernel_id, path=path,
         buffers=list(buffers))
    feed(recorder, "kernel_end", kernel_id=kernel_id, path=path,
         gpu_groups=groups - 4, cpu_groups=4)


class TestCleanStreams:
    def test_cooperative_kernel_passes(self):
        recorder, monitor = make_monitor()
        feed_clean_kernel(recorder)
        monitor.final_check()
        assert monitor.ok, monitor.report()
        assert monitor.checks > 10

    def test_multi_kernel_chain_passes(self):
        recorder, monitor = make_monitor()
        for kid in (1, 2, 3):
            feed_clean_kernel(recorder, kernel_id=kid)
        monitor.final_check()
        assert monitor.ok, monitor.report()

    def test_report_mentions_check_count(self):
        recorder, monitor = make_monitor()
        feed_clean_kernel(recorder)
        assert "OK" in monitor.report()

    def test_detach_stops_observation(self):
        recorder, monitor = make_monitor()
        monitor.detach(recorder)
        feed(recorder, "subkernel_launch", kernel_id=99, fid_start=0,
             fid_end=1)
        assert monitor.ok


def first_invariant(monitor):
    assert not monitor.ok, "expected a violation"
    return monitor.violations[0].invariant


class TestPartitionInvariant:
    def test_overlapping_window_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=10)
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=8, fid_end=10)
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=7, fid_end=9)
        assert first_invariant(monitor) == "cpu-front-partition"

    def test_gap_in_front_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=10)
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=8, fid_end=10)
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=4, fid_end=6)
        assert first_invariant(monitor) == "cpu-front-partition"

    def test_window_outside_ndrange_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=10)
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=8, fid_end=12)
        assert first_invariant(monitor) == "cpu-front-partition"


class TestFrontierInvariant:
    def test_non_decreasing_frontier_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=10)
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=6, fid_end=10)
        feed(recorder, "status_delivery", kernel_id=1, frontier=8, accepted=True)
        feed(recorder, "status_delivery", kernel_id=1, frontier=8, accepted=True)
        assert first_invariant(monitor) == "frontier-monotonicity"

    def test_rejected_status_is_ignored(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=10)
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=6, fid_end=10)
        feed(recorder, "status_delivery", kernel_id=1, frontier=8, accepted=True)
        feed(recorder, "status_delivery", kernel_id=1, frontier=8, accepted=False)
        assert monitor.ok

    def test_status_ahead_of_execution_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=10)
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=8, fid_end=10)
        # claims groups [2, 10) done, but only [8, 10) was ever launched
        feed(recorder, "status_delivery", kernel_id=1, frontier=2, accepted=True)
        assert first_invariant(monitor) == "frontier-monotonicity"


class TestCoverageAndMerge:
    def test_lost_groups_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=10)
        feed(recorder, "commit", kernel_id=1, path="gpu-only", buffers=["y"])
        feed(recorder, "kernel_end", kernel_id=1, path="gpu-only",
             gpu_groups=8, cpu_groups=0)
        assert first_invariant(monitor) == "coverage"

    def test_failover_must_complete_everything(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=10)
        feed(recorder, "commit", kernel_id=1, path="failover", buffers=["y"])
        feed(recorder, "kernel_end", kernel_id=1, path="failover",
             gpu_groups=0, cpu_groups=7)
        assert first_invariant(monitor) == "coverage"

    def test_dropped_cpu_work_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=10)
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=8, fid_end=10)
        feed(recorder, "status_delivery", kernel_id=1, frontier=8, accepted=True)
        feed(recorder, "commit", kernel_id=1, path="gpu-only", buffers=["y"])
        feed(recorder, "kernel_end", kernel_id=1, path="gpu-only",
             gpu_groups=10, cpu_groups=2)
        assert first_invariant(monitor) == "overlap-merge"

    def test_merged_path_without_merge_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=10)
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=8, fid_end=10)
        feed(recorder, "status_delivery", kernel_id=1, frontier=8, accepted=True)
        feed(recorder, "commit", kernel_id=1, path="merged", buffers=["y"])
        feed(recorder, "kernel_end", kernel_id=1, path="merged",
             gpu_groups=10, cpu_groups=2)
        assert first_invariant(monitor) == "overlap-merge"

    def test_merge_bytes_exceeding_buffer_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=10)
        feed(recorder, "merge_enqueued", kernel_id=1, buffer="y", cpu_groups=2)
        feed(recorder, "merge_done", kernel_id=1, buffer="y",
             nbytes_merged=128, nbytes_buffer=64, cancelled=False)
        assert first_invariant(monitor) == "merge-accounting"

    def test_cancelled_merge_accounting_is_void(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=10)
        feed(recorder, "merge_enqueued", kernel_id=1, buffer="y", cpu_groups=2)
        feed(recorder, "merge_done", kernel_id=1, buffer="y",
             nbytes_merged=0, nbytes_buffer=64, cancelled=True)
        assert monitor.ok


class TestVersionInvariants:
    def test_non_monotonic_commit_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "buffer_write", buffer="y", version=5)
        feed(recorder, "kernel_begin", kernel_id=3, kernel="k", groups=4)
        feed(recorder, "commit", kernel_id=3, path="gpu-only", buffers=["y"])
        assert first_invariant(monitor) == "version-monotonicity"

    def test_stale_host_read_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "buffer_write", buffer="y", version=2)
        feed(recorder, "buffer_read", buffer="y", version=1)
        assert first_invariant(monitor) == "stale-read"

    def test_current_read_passes(self):
        recorder, monitor = make_monitor()
        feed(recorder, "buffer_write", buffer="y", version=2)
        feed(recorder, "buffer_read", buffer="y", version=2)
        assert monitor.ok

    def test_discard_of_current_version_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=2, kernel="k", groups=4)
        feed(recorder, "stale_dh_discard", kernel_id=2, buffer="y",
             superseded_by=2)
        assert first_invariant(monitor) == "stale-discard"

    def test_discard_for_newer_version_passes(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=2, kernel="k", groups=4)
        feed(recorder, "stale_dh_discard", kernel_id=2, buffer="y",
             superseded_by=5)
        assert monitor.ok


class TestCommitConsistency:
    def test_double_commit_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=4)
        feed(recorder, "commit", kernel_id=1, path="gpu-only", buffers=["y"])
        feed(recorder, "commit", kernel_id=1, path="merged", buffers=[])
        assert first_invariant(monitor) == "commit-consistency"

    def test_end_path_must_match_commit_path(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=4)
        feed(recorder, "commit", kernel_id=1, path="gpu-only", buffers=["y"])
        feed(recorder, "kernel_end", kernel_id=1, path="merged",
             gpu_groups=4, cpu_groups=2)
        assert first_invariant(monitor) == "commit-consistency"

    def test_event_for_unknown_kernel_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "subkernel_launch", kernel_id=7, fid_start=0, fid_end=1)
        assert first_invariant(monitor) == "commit-consistency"

    def test_unfinished_kernel_flagged_by_final_check(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=4)
        monitor.final_check()
        assert first_invariant(monitor) == "commit-consistency"

    def test_unfinished_kernel_tolerated_after_abort(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=4)
        monitor.final_check(aborted=True)
        assert monitor.ok


class TestStrictMode:
    def test_strict_raises_at_violation_instant(self):
        recorder = EventRecorder()
        monitor = CoherenceMonitor(strict=True).attach(recorder)
        feed(recorder, "buffer_write", buffer="y", version=2)
        with pytest.raises(InvariantViolationError) as exc:
            feed(recorder, "buffer_read", buffer="y", version=1)
        assert exc.value.violation.invariant == "stale-read"


class TestFrontPartitionInvariant:
    """Invariant #10: N-device sets — worker-front windows partition the
    claimed range, and redo windows only re-cover foreign claims."""

    def feed_two_worker_kernel(self, recorder, total=12):
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=total)
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=10,
             fid_end=12, device="gpu-b")
        feed(recorder, "status_delivery", kernel_id=1, frontier=10,
             accepted=True)
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=8,
             fid_end=10, device="cpu")
        feed(recorder, "status_delivery", kernel_id=1, frontier=8,
             accepted=True)
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=6,
             fid_end=8, device="gpu-b")
        feed(recorder, "status_delivery", kernel_id=1, frontier=6,
             accepted=True)

    def test_interleaved_worker_fronts_pass(self):
        recorder, monitor = make_monitor()
        self.feed_two_worker_kernel(recorder)
        feed(recorder, "merge_enqueued", kernel_id=1, buffer="y",
             cpu_groups=6, device="gpu-b")
        feed(recorder, "merge_done", kernel_id=1, buffer="y",
             nbytes_merged=16, nbytes_buffer=64, cancelled=False)
        feed(recorder, "merge_enqueued", kernel_id=1, buffer="y",
             cpu_groups=6, device="cpu")
        feed(recorder, "merge_done", kernel_id=1, buffer="y",
             nbytes_merged=16, nbytes_buffer=64, cancelled=False)
        feed(recorder, "commit", kernel_id=1, path="merged", buffers=["y"])
        feed(recorder, "kernel_end", kernel_id=1, path="merged",
             gpu_groups=6, cpu_groups=6)
        monitor.final_check()
        assert monitor.ok, monitor.report()

    def test_redo_over_foreign_claim_passes(self):
        recorder, monitor = make_monitor()
        self.feed_two_worker_kernel(recorder)
        # anchor lost: 'cpu' leads, drains the floor, then re-executes the
        # other front's [6, 8) and [10, 12) windows as redo spans
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=0,
             fid_end=6, device="cpu")
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=10,
             fid_end=12, device="cpu", redo=True)
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=6,
             fid_end=8, device="cpu", redo=True)
        feed(recorder, "commit", kernel_id=1, path="failover", buffers=["y"])
        feed(recorder, "kernel_end", kernel_id=1, path="failover",
             gpu_groups=0, cpu_groups=12)
        monitor.final_check()
        assert monitor.ok, monitor.report()

    def test_redo_over_unclaimed_range_flagged(self):
        recorder, monitor = make_monitor()
        self.feed_two_worker_kernel(recorder)
        # [2, 5) was never claimed by any front: nothing to re-execute
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=2,
             fid_end=5, device="cpu", redo=True)
        assert first_invariant(monitor) == "front-partition"

    def test_redo_over_own_claim_flagged(self):
        recorder, monitor = make_monitor()
        self.feed_two_worker_kernel(recorder)
        # [8, 10) belongs to 'cpu' itself — redoing it is double execution,
        # not failover recovery of a foreign span
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=8,
             fid_end=10, device="cpu", redo=True)
        assert first_invariant(monitor) == "front-partition"

    def test_redo_does_not_advance_the_claim_front(self):
        recorder, monitor = make_monitor()
        self.feed_two_worker_kernel(recorder)
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=10,
             fid_end=12, device="cpu", redo=True)
        # the descending claim front still stands at 6: the next regular
        # window must continue there, and does
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=4,
             fid_end=6, device="cpu")
        assert monitor.ok, monitor.report()

    def test_cross_front_gap_flagged_at_kernel_end(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", kernel_id=1, kernel="k", groups=12)
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=10,
             fid_end=12, device="gpu-b")
        feed(recorder, "subkernel_launch", kernel_id=1, fid_start=6,
             fid_end=8, device="cpu")
        feed(recorder, "commit", kernel_id=1, path="merged", buffers=["y"])
        feed(recorder, "merge_enqueued", kernel_id=1, buffer="y",
             cpu_groups=4)
        feed(recorder, "merge_done", kernel_id=1, buffer="y",
             nbytes_merged=8, nbytes_buffer=64, cancelled=False)
        feed(recorder, "kernel_end", kernel_id=1, path="merged",
             gpu_groups=8, cpu_groups=4)
        assert not monitor.ok
        tripped = {v.invariant for v in monitor.violations}
        assert "front-partition" in tripped


class TestClockMonotonicityInvariant:
    """Invariant #11: observed timestamps never decrease."""

    def test_monotone_stream_passes(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", ts=0.0, kernel_id=1, kernel="k",
             groups=4)
        feed(recorder, "subkernel_launch", ts=1e-6, kernel_id=1,
             fid_start=0, fid_end=4)
        feed(recorder, "status_delivery", ts=1e-6, kernel_id=1,
             frontier=0, accepted=True)  # same-instant ties are fine
        assert monitor.ok, monitor.report()

    def test_backwards_timestamp_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "kernel_begin", ts=2e-6, kernel_id=1, kernel="k",
             groups=4)
        feed(recorder, "pool_miss", ts=1e-6)
        assert first_invariant(monitor) == "clock-monotonicity"

    def test_unhandled_categories_are_checked_too(self):
        recorder, monitor = make_monitor()
        feed(recorder, "cmd_start", ts=5e-6)
        feed(recorder, "cmd_end", ts=4e-6)
        assert first_invariant(monitor) == "clock-monotonicity"

    def test_strict_mode_raises_at_the_instant(self):
        recorder = EventRecorder()
        monitor = CoherenceMonitor(strict=True).attach(recorder)
        feed(recorder, "cmd_start", ts=5e-6)
        with pytest.raises(InvariantViolationError):
            feed(recorder, "cmd_start", ts=3e-6)


def feed_clean_job(recorder, job_id=0, tenant="acme", ts=0.0):
    """A well-formed serving-layer job lifecycle."""
    feed(recorder, "job_submitted", ts=ts, job_id=job_id, tenant=tenant)
    feed(recorder, "job_admitted", ts=ts, job_id=job_id, tenant=tenant)
    feed(recorder, "job_started", ts=ts + 1e-6, job_id=job_id, tenant=tenant)
    feed(recorder, "job_done", ts=ts + 2e-6, job_id=job_id, tenant=tenant,
         outcome="done")


class TestServeAccountingInvariant:
    """Invariant #12: admission conservation and per-tenant FIFO order."""

    def test_clean_lifecycles_pass(self):
        recorder, monitor = make_monitor()
        for job_id in range(3):
            feed_clean_job(recorder, job_id=job_id, ts=job_id * 1e-5)
        feed(recorder, "job_submitted", ts=1e-3, job_id=9, tenant="acme")
        feed(recorder, "job_shed", ts=1e-3, job_id=9, tenant="acme")
        monitor.final_check()
        assert monitor.ok, monitor.report()

    def test_duplicate_submission_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "job_submitted", job_id=1, tenant="acme")
        feed(recorder, "job_submitted", job_id=1, tenant="acme")
        assert first_invariant(monitor) == "serve-accounting"

    def test_fifo_inversion_flagged(self):
        recorder, monitor = make_monitor()
        for job_id in (1, 2):
            feed(recorder, "job_submitted", job_id=job_id, tenant="acme")
            feed(recorder, "job_admitted", job_id=job_id, tenant="acme")
        # job 2 jumps the queue ahead of job 1
        feed(recorder, "job_started", job_id=2, tenant="acme")
        assert first_invariant(monitor) == "serve-accounting"
        assert "FIFO" in str(monitor.violations[0])

    def test_cross_tenant_order_is_free(self):
        recorder, monitor = make_monitor()
        for job_id, tenant in ((1, "a"), (2, "b")):
            feed(recorder, "job_submitted", job_id=job_id, tenant=tenant)
            feed(recorder, "job_admitted", job_id=job_id, tenant=tenant)
        feed(recorder, "job_started", job_id=2, tenant="b")
        feed(recorder, "job_started", job_id=1, tenant="a")
        assert monitor.ok, monitor.report()

    def test_start_of_shed_job_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "job_submitted", job_id=1, tenant="acme")
        feed(recorder, "job_shed", job_id=1, tenant="acme")
        feed(recorder, "job_started", job_id=1, tenant="acme")
        assert first_invariant(monitor) == "serve-accounting"

    def test_done_without_start_flagged(self):
        recorder, monitor = make_monitor()
        feed(recorder, "job_submitted", job_id=1, tenant="acme")
        feed(recorder, "job_admitted", job_id=1, tenant="acme")
        feed(recorder, "job_done", job_id=1, tenant="acme", outcome="done")
        assert first_invariant(monitor) == "serve-accounting"

    def test_unresolved_submission_flagged_at_final_check(self):
        recorder, monitor = make_monitor()
        feed(recorder, "job_submitted", job_id=1, tenant="acme")
        assert monitor.ok  # online it's fine: admission may be in flight
        monitor.final_check()
        assert first_invariant(monitor) == "serve-accounting"

    def test_unfinished_admitted_job_flagged_unless_aborted(self):
        recorder, monitor = make_monitor()
        feed(recorder, "job_submitted", job_id=1, tenant="acme")
        feed(recorder, "job_admitted", job_id=1, tenant="acme")
        monitor.final_check(aborted=True)
        assert monitor.ok, monitor.report()
        recorder2, monitor2 = make_monitor()
        feed(recorder2, "job_submitted", job_id=1, tenant="acme")
        feed(recorder2, "job_admitted", job_id=1, tenant="acme")
        monitor2.final_check()
        assert first_invariant(monitor2) == "serve-accounting"
