"""The fuzzer's static pre-flight: unsafe kernels are never scheduled."""

from repro.analysis.known_bad import cross_group_write_kernel
from repro.check import fuzzer as fuzzer_mod
from repro.check.fuzzer import FuzzConfig, preflight_lint, run_config
from repro.polybench.common import PolybenchApp
from repro.polybench.suite import make_app


class _UnsafeApp(PolybenchApp):
    """Stub app whose single kernel races across work-groups."""

    name = "unsafe-stub"

    def build_inputs(self, rng):  # pragma: no cover - never scheduled
        return {}

    def reference(self, inputs):  # pragma: no cover - never scheduled
        return {}

    def host_program(self, runtime, inputs):  # pragma: no cover
        raise AssertionError("lint-rejected app must not run")

    def kernel_metas(self):  # pragma: no cover - never scheduled
        return []

    def kernel_specs(self):
        return [cross_group_write_kernel()]


class TestPreflightLint:
    def test_clean_app_passes(self):
        app = make_app("gesummv", scale="test", size=64)
        assert preflight_lint(app, FuzzConfig(seed=0)) == []

    def test_unsafe_app_is_reported(self):
        reports = preflight_lint(_UnsafeApp(), FuzzConfig(seed=0))
        assert len(reports) == 1
        assert "FK201" in reports[0].rule_ids()

    def test_app_without_specs_passes_through(self):
        app = make_app("gesummv", scale="test", size=64)
        app.kernel_specs = lambda: None
        assert preflight_lint(app, FuzzConfig(seed=0)) == []

    def test_variant_flags_are_honored(self):
        # gesummv kernels are long-loop but FK301 is WARNING severity, so
        # even an abort-less draw stays schedulable (preflight only rejects
        # on errors)
        app = make_app("gesummv", scale="test", size=64)
        config = FuzzConfig(seed=0, abort_in_loops=False, loop_unroll=False)
        assert preflight_lint(app, config) == []


class TestRunConfigRejection:
    def test_run_config_skips_unsafe_app(self, monkeypatch):
        monkeypatch.setattr(fuzzer_mod, "make_app",
                            lambda *a, **k: _UnsafeApp())
        result = run_config(FuzzConfig(seed=0, app="gesummv", size=64))
        assert result.outcome == "lint-rejected"
        assert not result.failed
        assert "FK201" in result.error
        assert result.checks == 0

    def test_run_config_still_runs_clean_apps(self):
        result = run_config(FuzzConfig(seed=0, app="gesummv", size=64))
        assert result.outcome == "ok"
        assert result.correct is True
