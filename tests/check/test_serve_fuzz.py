"""Tests for the fuzzer's serving axis (--serve) and its shrinker hooks."""

from dataclasses import replace

from repro.check import FuzzConfig, reproducer_source, run_config, shrink
from repro.check.fuzzer import CheckResult, ScheduleFuzzer
from repro.check.monitor import Violation
from repro.serve.run import ServeConfig


def stub_runner(predicate):
    calls = []

    def run(config):
        calls.append(config)
        failing = predicate(config)
        return CheckResult(
            config=config,
            outcome="ok",
            violations=[Violation("stub", "stub failure", 0.0)] if failing
            else [],
            correct=not failing,
        )

    run.calls = calls
    return run


def noisy_serve_config(**overrides):
    serve = ServeConfig(
        seed=3, requests=160, arrival="burst", machine="cpu+2gpu",
        n_tenants=3, max_inflight=4, fault_seed=5, jitter_seed=77,
    )
    return FuzzConfig(seed=3, machine="cpu+2gpu",
                      serve=replace(serve, **overrides))


class TestServeAxis:
    def test_classic_axes_never_draw_serve(self):
        fuzzer = ScheduleFuzzer()
        assert all(fuzzer.config(seed).serve is None for seed in range(6))

    def test_serve_config_is_deterministic(self):
        first = ScheduleFuzzer(serve=True).config(4)
        second = ScheduleFuzzer(serve=True).config(4)
        assert first == second
        assert first.serve is not None

    def test_serve_draws_cover_the_axes(self):
        configs = [ScheduleFuzzer(serve=True).config(s).serve
                   for s in range(12)]
        assert {c.arrival for c in configs} \
            == {"poisson", "burst", "closed"}
        assert any(c.fault_seed is not None for c in configs)
        assert any(c.jitter_seed is not None for c in configs)
        assert any(c.utilization > 1.0 for c in configs)  # overload included

    def test_describe_mentions_the_serve_shape(self):
        config = ScheduleFuzzer(serve=True).config(0)
        described = config.describe()
        assert "serve" in described
        assert config.serve.arrival in described

    def test_run_config_serve_path_is_clean(self):
        config = ScheduleFuzzer(serve=True).config(0)
        result = run_config(config)
        assert result.outcome == "ok"
        assert not result.failed, result.violations
        assert result.checks > 0

    def test_summary_labels_serve_runs(self):
        config = ScheduleFuzzer(serve=True).config(0)
        result = CheckResult(config=config, outcome="ok", correct=True)
        assert "serve" in result.summary()


class TestServeShrinking:
    def test_config_independent_failure_reduces_to_defaults(self):
        shrunk = shrink(noisy_serve_config(),
                        run_fn=stub_runner(lambda c: True))
        minimal = shrunk.minimal.serve
        assert shrunk.reduced
        assert minimal.fault_seed is None
        assert minimal.jitter_seed is None
        assert minimal.machine == "default"
        assert minimal.arrival == "poisson"
        assert minimal.n_tenants == 1
        assert minimal.max_inflight == 1
        assert minimal.requests <= 40

    def test_essential_axis_is_kept(self):
        def needs_burst(config):
            return config.serve is not None and config.serve.arrival == "burst"

        shrunk = shrink(noisy_serve_config(),
                        run_fn=stub_runner(needs_burst))
        assert shrunk.minimal.serve.arrival == "burst"
        assert shrunk.minimal.serve.fault_seed is None  # noise still dropped

    def test_reproducer_renders_serve_config(self):
        shrunk = shrink(noisy_serve_config(),
                        run_fn=stub_runner(lambda c: True))
        source = reproducer_source(shrunk)
        assert "ServeConfig" in source
        assert "serve=ServeConfig(" in source
        compile(source, "<reproducer>", "exec")
        # non-default fields only: the fully-shrunk serve literal carries
        # no arrival/machine/fault clutter
        assert "arrival=" not in source
        assert "fault_seed=" not in source
