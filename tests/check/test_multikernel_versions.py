"""Multi-kernel version tracking through a 3-kernel chain (satellite of
the repro.check PR).

3MM (``E = A*B; F = C*D; G = E*F``) chains three kernels through
intermediate buffers that the host never writes or reads.  With location
tracking on, kernel N+1 must consume kernel N's output where it already
lives — no redundant host-side re-upload — and the final read must
observe the newest committed versions (§5.3, §6.2).
"""

import numpy as np

from repro.check import CoherenceMonitor
from repro.core.runtime import FluidiCLRuntime
from repro.hw.machine import build_machine
from repro.polybench.suite import make_app


def run_3mm_traced():
    machine = build_machine(trace=True)
    runtime = FluidiCLRuntime(machine)
    monitor = CoherenceMonitor().attach(machine.tracer)
    app = make_app("3mm", scale="test")
    result = app.execute(runtime, check=True)
    runtime.drain()
    monitor.final_check()
    return machine.tracer, monitor, result


class TestThreeKernelChain:
    def setup_method(self):
        self.recorder, self.monitor, self.result = run_3mm_traced()
        self.events = self.recorder.events

    def of(self, category):
        return [e for e in self.events if e.category == category]

    def test_result_correct_and_invariants_hold(self):
        assert self.result.correct, self.result
        assert self.monitor.ok, self.monitor.report()

    def test_three_kernels_commit_in_version_order(self):
        commits = self.of("commit")
        assert len(commits) == 3
        kernel_ids = [c["kernel_id"] for c in commits]
        assert kernel_ids == sorted(kernel_ids)
        committed = {name for c in commits for name in c["buffers"]}
        assert committed == {"E", "F", "G"}

    def test_intermediates_are_never_host_written(self):
        """E, F and G exist only on the devices: any ``buffer_write`` for
        them would be a redundant host->device transfer."""
        written = {e["buffer"] for e in self.of("buffer_write")}
        assert written == {"A", "B", "C", "D"}

    def test_no_redundant_gpu_refresh_of_current_buffers(self):
        """A gpu_input_refresh re-uploads CPU data to the GPU; it is only
        justified for buffers whose last commit left the GPU copy stale
        (cpu-complete / failover paths)."""
        cpu_side_paths = ("cpu-complete", "failover")
        commit_path = {}
        for commit in self.of("commit"):
            for name in commit["buffers"]:
                commit_path[name] = commit["path"]
        for refresh in self.of("gpu_input_refresh"):
            name = refresh["buffer"]
            assert commit_path.get(name) in cpu_side_paths, (
                f"redundant refresh of {name!r}: GPU copy was already "
                f"current after a {commit_path.get(name)!r} commit"
            )

    def test_final_read_observes_the_newest_version(self):
        reads = [e for e in self.of("buffer_read") if e["buffer"] == "G"]
        assert len(reads) == 1
        commit_g = next(c for c in self.of("commit")
                        if "G" in c["buffers"])
        assert reads[0]["version"] == commit_g["kernel_id"]

    def test_consumer_kernels_start_after_producer_commits(self):
        """Kernel 3 (reads E and F) must begin only after both producers
        committed — the version wait the runtime performs (§5.3)."""
        begins = self.of("kernel_begin")
        assert len(begins) == 3
        third_begin_ts = begins[2].ts
        for name in ("E", "F"):
            commit = next(c for c in self.of("commit")
                          if name in c["buffers"])
            assert commit.ts <= third_begin_ts


class TestChainNumerics:
    def test_outputs_match_reference(self):
        _, _, result = run_3mm_traced()
        app = make_app("3mm", scale="test")
        inputs = app.fresh_inputs()
        expected = app.reference(inputs)
        assert result.max_relative_error <= 5e-3
        assert set(result.outputs) == set(expected)
        assert result.outputs["G"].shape == expected["G"].shape
        assert np.isfinite(result.outputs["G"]).all()
