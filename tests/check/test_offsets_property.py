"""Property tests for the flattened-ID arithmetic of CPU subkernels.

Seeded stdlib-``random`` sweeps over arbitrary NDRange shapes (rank 1-3)
assert the paper's §5.1/§5.2 partition argument: the GPU front ``[0,
frontier)`` and the CPU-front subkernel windows (walking down from the
top in arbitrary chunk sizes) partition the flattened range exactly — no
overlap, no gap — and each covering slice recovers exactly its window
after the in-kernel range check.
"""

import random

import pytest

from repro.core.offsets import subkernel_slice
from repro.ocl.ndrange import NDRange

N_TRIALS = 40


def random_ndrange(rng: random.Random) -> NDRange:
    rank = rng.randint(1, 3)
    local = [rng.choice((1, 2, 4)) for _ in range(rank)]
    groups = [rng.randint(1, 6) for _ in range(rank)]
    return NDRange(
        tuple(l * g for l, g in zip(local, groups)),
        tuple(local),
    )


def random_cpu_windows(rng: random.Random, total: int, frontier: int):
    """CPU-front windows: from ``total`` down to ``frontier`` in random
    chunks, exactly as the scheduler carves them."""
    windows = []
    hi = total
    while hi > frontier:
        lo = max(frontier, hi - rng.randint(1, max(1, total // 3)))
        windows.append((lo, hi))
        hi = lo
    return windows


def slice_fids(ndrange: NDRange, launch) -> set:
    """Flattened IDs of every group the covering slice launches."""
    fids = set()
    slice_nd = launch.slice_range
    ranges = [range(n) for n in slice_nd.num_groups]

    def walk(dims, gid):
        if not dims:
            fids.add(ndrange.flatten_group(
                slice_nd.absolute_group(tuple(gid))))
            return
        for g in dims[0]:
            walk(dims[1:], gid + [g])

    walk(ranges, [])
    return fids


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_cpu_and_gpu_fronts_partition_the_ndrange(trial):
    rng = random.Random(f"offsets-partition:{trial}")
    ndrange = random_ndrange(rng)
    total = ndrange.total_groups
    frontier = rng.randint(0, total)
    windows = random_cpu_windows(rng, total, frontier)

    gpu_front = set(range(frontier))
    cpu_sets = [set(range(lo, hi)) for lo, hi in windows]

    covered = set(gpu_front)
    for fids in cpu_sets:
        assert not covered & fids, "window overlaps earlier coverage"
        covered |= fids
    assert covered == set(range(total)), "gap in the partition"


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_covering_slice_recovers_exactly_the_window(trial):
    rng = random.Random(f"offsets-slice:{trial}")
    ndrange = random_ndrange(rng)
    total = ndrange.total_groups
    lo = rng.randint(0, total - 1)
    hi = rng.randint(lo + 1, total)

    launch = subkernel_slice(ndrange, lo, hi)
    launched = slice_fids(ndrange, launch)
    window = set(range(lo, hi))

    # the slice covers the window...
    assert window <= launched, "covering slice misses window groups"
    # ...the in-kernel range check then rejects exactly the surplus
    accepted = {fid for fid in launched if lo <= fid < hi}
    assert accepted == window
    assert launch.surplus_groups == len(launched) - len(window)
    assert launch.useful_groups == hi - lo


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_flatten_unflatten_round_trip(trial):
    rng = random.Random(f"offsets-roundtrip:{trial}")
    ndrange = random_ndrange(rng)
    for fid in range(ndrange.total_groups):
        assert ndrange.flatten_group(ndrange.unflatten_group(fid)) == fid


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_adjacent_windows_launch_disjoint_useful_groups(trial):
    """Two adjacent CPU windows may share surplus slice groups, but their
    *useful* (range-checked) groups never overlap."""
    rng = random.Random(f"offsets-adjacent:{trial}")
    ndrange = random_ndrange(rng)
    total = ndrange.total_groups
    if total < 2:
        return
    mid = rng.randint(1, total - 1)
    upper = subkernel_slice(ndrange, mid, total)
    lower_lo = rng.randint(0, mid - 1)
    lower = subkernel_slice(ndrange, lower_lo, mid)

    upper_useful = set(range(upper.fid_start, upper.fid_end))
    lower_useful = set(range(lower.fid_start, lower.fid_end))
    assert not upper_useful & lower_useful
    assert upper_useful | lower_useful == set(range(lower_lo, total))
