"""Tests for the schedule-space fuzzer: determinism, coverage, checking."""

import pytest

from repro.check import (
    CORRUPTION_KINDS,
    FuzzConfig,
    ScheduleFuzzer,
    run_config,
)
from repro.polybench.suite import EXTENDED_SUITE


class TestDeterminism:
    def test_same_seed_same_config(self):
        fuzzer = ScheduleFuzzer()
        assert fuzzer.config(17) == fuzzer.config(17)

    def test_different_seeds_differ(self):
        fuzzer = ScheduleFuzzer()
        configs = fuzzer.configs(8)
        assert len(set(configs)) == 8

    def test_same_config_same_run(self):
        config = ScheduleFuzzer(faults=False).config(3)
        first = run_config(config)
        second = run_config(config)
        assert first.elapsed == second.elapsed
        assert first.events == second.events
        assert first.outcome == second.outcome

    def test_jitter_is_part_of_the_seed(self):
        fuzzer = ScheduleFuzzer()
        jittered = [s for s in range(16)
                    if fuzzer.config(s).jitter_seed is not None]
        assert jittered, "no seed drew jitter in 16 tries"
        config = fuzzer.config(jittered[0])
        assert run_config(config).elapsed == run_config(config).elapsed


class TestDraws:
    def test_round_robin_covers_every_app(self):
        fuzzer = ScheduleFuzzer()
        drawn = {c.app for c in fuzzer.configs(len(EXTENDED_SUITE))}
        assert drawn == set(EXTENDED_SUITE)

    def test_app_subset_respected(self):
        fuzzer = ScheduleFuzzer(apps=("gesummv", "bicg"))
        assert {c.app for c in fuzzer.configs(10)} == {"gesummv", "bicg"}

    def test_no_faults_flag(self):
        fuzzer = ScheduleFuzzer(faults=False)
        assert all(not c.faults for c in fuzzer.configs(16))

    def test_no_jitter_flag(self):
        fuzzer = ScheduleFuzzer(jitter=False)
        assert all(c.jitter_seed is None for c in fuzzer.configs(16))

    def test_sizes_are_valid_for_the_apps(self):
        fuzzer = ScheduleFuzzer()
        for config in fuzzer.configs(20):
            assert config.size % 32 == 0
            assert config.size >= 64

    def test_fuzzer_never_draws_corruption(self):
        fuzzer = ScheduleFuzzer()
        assert all(c.corruption is None for c in fuzzer.configs(20))

    def test_describe_mentions_the_app(self):
        config = ScheduleFuzzer().config(0)
        assert config.app in config.describe()


class TestRunConfig:
    def test_clean_run_has_no_violations(self):
        result = run_config(FuzzConfig(seed=0, app="gesummv", size=128))
        assert result.outcome == "ok"
        assert result.violations == []
        assert result.correct is True
        assert result.checks > 0
        assert result.events > 0
        assert not result.failed

    def test_multi_kernel_app_clean(self):
        result = run_config(FuzzConfig(seed=0, app="2mm", size=64))
        assert result.outcome == "ok"
        assert result.violations == []
        assert result.correct is True

    def test_device_loss_is_an_accepted_outcome(self):
        from repro.faults import FaultKind, FaultSpec
        config = FuzzConfig(
            seed=0, app="gesummv", size=128,
            faults=(FaultSpec(FaultKind.DEVICE_LOSS, at=0.0, device="gpu"),
                    FaultSpec(FaultKind.DEVICE_LOSS, at=1e-5, device="cpu")),
        )
        result = run_config(config)
        assert result.outcome == "device-lost"
        assert not result.violations

    @pytest.mark.parametrize("kind", CORRUPTION_KINDS)
    def test_known_bad_corruption_is_caught(self, kind):
        config = FuzzConfig(seed=0, app="gesummv", size=64, corruption=kind)
        result = run_config(config)
        assert result.failed
        assert result.violations, f"corruption {kind} went undetected"

    def test_corruption_maps_to_expected_invariant(self):
        # overlap-window breaks both the per-event descent check and the
        # end-of-kernel partition accounting (invariant #10)
        expected = {
            "overlap-window": {"cpu-front-partition", "front-partition"},
            "stale-read": {"stale-read"},
            "frontier-jump": {"frontier-monotonicity"},
        }
        for kind, invariants in expected.items():
            result = run_config(
                FuzzConfig(seed=0, app="gesummv", size=64, corruption=kind))
            assert {v.invariant for v in result.violations} == invariants

    def test_unknown_corruption_rejected(self):
        config = FuzzConfig(seed=0, corruption="flip-bits")
        with pytest.raises(ValueError, match="unknown corruption"):
            run_config(config)

    def test_summary_is_one_line(self):
        result = run_config(FuzzConfig(seed=0, app="gesummv", size=64))
        assert "\n" not in result.summary()
        assert "gesummv" in result.summary()


class TestFuzzSweep:
    """A miniature in-suite campaign over every app (the tier-1 anchor)."""

    @pytest.mark.parametrize("seed", range(len(EXTENDED_SUITE)))
    def test_seed_sweep_holds_invariants(self, seed):
        result = run_config(ScheduleFuzzer().config(seed))
        assert result.outcome in ("ok", "device-lost"), result.error
        assert result.violations == [], "\n".join(
            str(v) for v in result.violations)
        if result.outcome == "ok":
            assert result.correct is True


class TestMachineAxis:
    """The ``machines`` round-robin axis (N-device presets)."""

    def test_default_axis_leaves_configs_unchanged(self):
        plain = ScheduleFuzzer()
        with_axis = ScheduleFuzzer(machines=("default",))
        assert plain.configs(8) == with_axis.configs(8)

    def test_machines_round_robin_over_seeds(self):
        fuzzer = ScheduleFuzzer(machines=("default", "cpu+2gpu"))
        drawn = [fuzzer.config(seed).machine for seed in range(4)]
        assert drawn == ["default", "cpu+2gpu", "default", "cpu+2gpu"]

    def test_machine_axis_consumes_no_rng_draws(self):
        """Routing a seed to a preset must not perturb the rest of its
        draw — otherwise the pinned default-machine seeds would drift."""
        from dataclasses import replace

        plain = ScheduleFuzzer().config(5)
        routed = ScheduleFuzzer(machines=("cpu+2gpu",)).config(5)
        assert replace(routed, machine="default") == plain

    def test_describe_mentions_nondefault_machine(self):
        config = ScheduleFuzzer(machines=("cpu+2gpu",)).config(0)
        assert "machine=cpu+2gpu" in config.describe()

    @pytest.mark.parametrize("seed", range(6))
    def test_ndevice_seed_sweep_holds_invariants(self, seed):
        result = run_config(ScheduleFuzzer(machines=("cpu+2gpu",)).config(seed))
        assert result.outcome in ("ok", "device-lost", "lint-rejected"), \
            result.error
        assert result.violations == [], "\n".join(
            str(v) for v in result.violations)
        if result.outcome == "ok":
            assert result.correct is True

    @pytest.mark.parametrize("preset", ["big.little", "cpu+3gpu"])
    def test_other_presets_run_clean(self, preset):
        result = run_config(ScheduleFuzzer(machines=(preset,),
                                           faults=False).config(0))
        assert result.outcome in ("ok", "lint-rejected"), result.error
        assert result.violations == []
        if result.outcome == "ok":
            assert result.correct is True
