"""Tests for the greedy shrinker and the pytest reproducer emitter."""

from dataclasses import replace

from repro.check import FuzzConfig, reproducer_source, run_config, shrink
from repro.check.fuzzer import CheckResult, ScheduleFuzzer
from repro.check.monitor import Violation
from repro.faults import FaultKind, FaultSpec


def stub_runner(predicate):
    """A fake run_config failing exactly when ``predicate(config)`` holds."""
    calls = []

    def run(config):
        calls.append(config)
        failing = predicate(config)
        return CheckResult(
            config=config,
            outcome="ok",
            violations=[Violation("stub", "stub failure", 0.0)] if failing
            else [],
            correct=not failing,
        )

    run.calls = calls
    return run


def noisy_config(**overrides):
    base = FuzzConfig(
        seed=9, app="3mm", size=128, gpu_scale=0.5, cpu_scale=2.0,
        initial_chunk_fraction=0.3, chunk_step_fraction=0.25,
        loop_unroll=False, jitter_seed=1234,
        faults=(FaultSpec(FaultKind.DEVICE_STALL, at=1e-4, duration=1e-4),
                FaultSpec(FaultKind.LINK_DEGRADE, at=2e-4, factor=0.5)),
        corruption="stale-read",
    )
    return replace(base, **overrides)


class TestShrinking:
    def test_config_independent_failure_reduces_to_defaults(self):
        run = stub_runner(lambda c: c.corruption is not None)
        shrunk = shrink(noisy_config(), run_fn=run)
        minimal = shrunk.minimal
        assert shrunk.reduced
        assert minimal.faults == ()
        assert minimal.jitter_seed is None
        assert minimal.gpu_scale == minimal.cpu_scale == 1.0
        assert minimal.app == "gesummv"
        assert minimal.size == 64
        assert minimal.corruption == "stale-read"
        assert shrunk.result.failed

    def test_essential_fault_is_kept(self):
        def needs_stall(config):
            return any(f.kind is FaultKind.DEVICE_STALL for f in config.faults)

        shrunk = shrink(noisy_config(corruption=None), run_fn=stub_runner(needs_stall))
        kinds = [f.kind for f in shrunk.minimal.faults]
        assert kinds == [FaultKind.DEVICE_STALL]

    def test_non_failing_config_is_returned_unshrunken(self):
        run = stub_runner(lambda c: False)
        shrunk = shrink(noisy_config(), run_fn=run)
        assert not shrunk.reduced
        assert shrunk.steps == ["original does not fail"]

    def test_run_budget_is_respected(self):
        run = stub_runner(lambda c: True)
        shrunk = shrink(noisy_config(), run_fn=run, max_runs=3)
        assert shrunk.runs <= 3

    def test_baseline_avoids_rerunning_the_original(self):
        run = stub_runner(lambda c: c.corruption is not None)
        baseline = run(noisy_config())
        run.calls.clear()
        shrink(noisy_config(), run_fn=run, baseline=baseline)
        assert noisy_config() not in run.calls

    def test_steps_describe_each_reduction(self):
        run = stub_runner(lambda c: c.corruption is not None)
        shrunk = shrink(noisy_config(), run_fn=run)
        assert any("jitter" in s for s in shrunk.steps)
        assert any("fault" in s for s in shrunk.steps)


class TestReproducerEmission:
    def shrunk(self):
        run = stub_runner(lambda c: c.corruption is not None)
        return shrink(noisy_config(), run_fn=run)

    def test_source_is_valid_python(self):
        source = reproducer_source(self.shrunk())
        compile(source, "<reproducer>", "exec")

    def test_source_reconstructs_the_minimal_config(self):
        shrunk = self.shrunk()
        source = reproducer_source(shrunk)
        namespace = {}
        exec(compile(source, "<reproducer>", "exec"), namespace)
        test_fns = [v for k, v in namespace.items() if k.startswith("test_")]
        assert len(test_fns) == 1
        # rebuild the config exactly as the emitted test would
        from repro.check import FuzzConfig as FC
        import re
        match = re.search(r"config = (FuzzConfig\((?:[^()]|\([^)]*\))*\))",
                          source, re.S)
        assert match, source
        rebuilt = eval(match.group(1), {
            "FuzzConfig": FC, "FaultKind": FaultKind, "FaultSpec": FaultSpec,
        })
        assert rebuilt == shrunk.minimal

    def test_source_documents_the_failure_and_steps(self):
        shrunk = self.shrunk()
        source = reproducer_source(shrunk)
        assert "stub failure" in source
        assert "disable interleave jitter" in source

    def test_fault_schedule_survives_round_trip(self):
        def needs_stall(config):
            return any(f.kind is FaultKind.DEVICE_STALL for f in config.faults)

        shrunk = shrink(noisy_config(corruption=None),
                        run_fn=stub_runner(needs_stall))
        source = reproducer_source(shrunk)
        assert "FaultSpec(FaultKind.DEVICE_STALL" in source
        assert "from repro.faults import FaultKind, FaultSpec" in source
        compile(source, "<reproducer>", "exec")


class TestEndToEnd:
    def test_corrupted_run_shrinks_to_minimal_failing_reproducer(self):
        """The acceptance path: a known-bad config is caught, shrunk and
        reported, and the minimal config still fails for the same reason."""
        config = replace(ScheduleFuzzer().config(3), corruption="stale-read")
        baseline = run_config(config)
        assert baseline.failed
        shrunk = shrink(config, baseline=baseline)
        assert shrunk.minimal.corruption == "stale-read"
        assert shrunk.result.failed
        assert {v.invariant for v in shrunk.result.violations} == {"stale-read"}
        source = reproducer_source(shrunk)
        compile(source, "<reproducer>", "exec")
        assert "stale-read" in source


class TestMachineReduction:
    def test_machine_independent_failure_swaps_back_to_default(self):
        run = stub_runner(lambda c: c.corruption is not None)
        shrunk = shrink(noisy_config(machine="cpu+2gpu"), run_fn=run)
        assert shrunk.minimal.machine == "default"
        assert any("swap machine" in step for step in shrunk.steps)

    def test_machine_essential_failure_keeps_the_preset(self):
        run = stub_runner(lambda c: c.machine == "cpu+2gpu")
        shrunk = shrink(noisy_config(machine="cpu+2gpu"), run_fn=run)
        assert shrunk.minimal.machine == "cpu+2gpu"
