"""The fuzzer axis over irregular apps, and shrinker app attribution.

When a failure only reproduces on an irregular app, the greedy shrinker's
"swap to gesummv" candidate must be rejected and the minimal reproducer
must still name the irregular app.
"""

from repro.check.fuzzer import CheckResult, FuzzConfig, ScheduleFuzzer
from repro.check.shrink import reproducer_source, shrink
from repro.polybench.suite import EXTENDED_SUITE

IRREGULAR = ("spmv", "histogram", "bfs", "scan")


class TestFuzzerDrawsIrregularApps:
    def test_round_robin_covers_all_four(self):
        fuzzer = ScheduleFuzzer(apps=IRREGULAR)
        drawn = [fuzzer.config(seed).app for seed in range(8)]
        assert drawn == list(IRREGULAR) * 2

    def test_drawn_sizes_are_valid_for_every_app(self):
        fuzzer = ScheduleFuzzer(apps=IRREGULAR)
        for seed in range(40):
            config = fuzzer.config(seed)
            assert config.size >= 64
            assert config.size % 32 == 0

    def test_full_suite_reaches_irregular_apps(self):
        fuzzer = ScheduleFuzzer()
        drawn = {fuzzer.config(seed).app
                 for seed in range(len(EXTENDED_SUITE))}
        assert set(IRREGULAR) <= drawn


class TestShrinkerNamesIrregularApp:
    def _fail_only_on(self, app_name):
        def run_fn(config):
            if config.app == app_name:
                return CheckResult(config=config, outcome="error",
                                   error="merge mismatch")
            return CheckResult(config=config, outcome="ok", correct=True)
        return run_fn

    def test_app_swap_is_rejected_and_reproducer_names_app(self):
        config = FuzzConfig(seed=77, app="spmv", size=256, jitter_seed=5,
                            machine="cpu+2gpu")
        run_fn = self._fail_only_on("spmv")
        shrunk = shrink(config, run_fn=run_fn, baseline=run_fn(config))
        assert shrunk.minimal.app == "spmv"
        assert shrunk.minimal.jitter_seed is None       # noise was dropped
        assert shrunk.minimal.machine == "default"
        source = reproducer_source(shrunk)
        assert "app='spmv'" in source
        assert "def test_fluidicl_check_seed_77" in source

    def test_every_irregular_app_survives_shrinking(self):
        for app_name in IRREGULAR:
            config = FuzzConfig(seed=5, app=app_name, size=256)
            run_fn = self._fail_only_on(app_name)
            shrunk = shrink(config, run_fn=run_fn, baseline=run_fn(config))
            assert shrunk.minimal.app == app_name
            assert f"app='{app_name}'" in reproducer_source(shrunk)
