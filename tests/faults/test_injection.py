"""The injector applies each fault class to the right device at the right
simulated time, with trace events and counters to match."""

import pytest

from repro.core.runtime import FluidiCLRuntime
from repro.faults import FaultKind, FaultSchedule, FaultSpec, install_faults
from repro.hw.machine import build_machine
from repro.obs.events import EventKind


def make_runtime(trace: bool = True) -> FluidiCLRuntime:
    return FluidiCLRuntime(build_machine(trace=trace))


class TestInjection:
    def test_stall_freezes_target_device_for_duration(self):
        runtime = make_runtime()
        install_faults(runtime, FaultSchedule.single(
            FaultKind.DEVICE_STALL, at=1.0, device="gpu", duration=0.5
        ))
        runtime.engine.run(until=1.0)
        assert runtime.gpu_device.health.stalled
        assert runtime.cpu_device.health.ok
        runtime.engine.run(until=1.6)
        assert runtime.gpu_device.health.ok

    def test_loss_is_permanent_and_reported(self):
        runtime = make_runtime()
        install_faults(runtime, FaultSchedule.single(
            FaultKind.DEVICE_LOSS, at=0.25, device="cpu"
        ))
        runtime.engine.run(until=0.5)
        health = runtime.cpu_device.health
        assert health.lost
        assert not health.ok
        assert "injected" in health.lost_reason
        assert runtime.gpu_device.health.ok

    def test_transfer_faults_become_pending_failures(self):
        runtime = make_runtime()
        install_faults(runtime, FaultSchedule.single(
            FaultKind.TRANSFER_FAULT, at=0.0, device="gpu",
            direction="d2h", count=3,
        ))
        runtime.engine.run(until=1e-9)
        health = runtime.gpu_device.health
        assert health.pending_transfer_faults("d2h") == 3
        assert health.pending_transfer_faults("h2d") == 0
        assert health.take_transfer_fault("d2h")
        assert health.pending_transfer_faults("d2h") == 2

    def test_link_degrade_scales_bandwidth(self):
        runtime = make_runtime()
        before = runtime.gpu_device.link.bandwidth
        install_faults(runtime, FaultSchedule.single(
            FaultKind.LINK_DEGRADE, at=0.5, device="gpu", factor=0.25
        ))
        runtime.engine.run(until=1.0)
        after = runtime.gpu_device.link
        assert after.bandwidth == pytest.approx(before * 0.25)
        assert "degraded" in after.name

    def test_trace_events_and_counters(self):
        runtime = make_runtime()
        schedule = FaultSchedule([
            FaultSpec(kind=FaultKind.DEVICE_STALL, at=0.1, duration=0.1),
            FaultSpec(kind=FaultKind.DEVICE_LOSS, at=0.2, device="cpu"),
        ])
        injector = install_faults(runtime, schedule)
        runtime.engine.run(until=0.5)
        assert runtime.stats.extra["faults_injected"] == 2
        assert [s.kind for s in injector.applied] == [
            FaultKind.DEVICE_STALL, FaultKind.DEVICE_LOSS,
        ]
        events = runtime.machine.tracer.by_kind(EventKind.FAULT)
        assert [e.name for e in events] == ["device-stall", "device-loss"]
        assert events[0].ts == pytest.approx(0.1)
        assert events[1].attrs["device"] == "cpu"

    def test_double_install_rejected(self):
        runtime = make_runtime()
        injector = install_faults(
            runtime, FaultSchedule.single(FaultKind.DEVICE_LOSS, at=1.0)
        )
        with pytest.raises(RuntimeError):
            injector.install()

    def test_no_schedule_is_inert(self):
        """An empty schedule must not even register a process."""
        runtime = make_runtime()
        injector = install_faults(runtime, FaultSchedule([]))
        runtime.engine.run(until=1.0)
        assert injector.applied == []
        assert runtime.stats.extra["faults_injected"] == 0
