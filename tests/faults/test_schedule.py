"""Unit tests for the deterministic fault schedule (repro.faults)."""

import pytest

from repro.faults import FaultKind, FaultSchedule, FaultSpec


class TestFaultSpecValidation:
    def test_kind_coerced_from_string(self):
        spec = FaultSpec(kind="device-loss", at=1.0)
        assert spec.kind is FaultKind.DEVICE_LOSS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor-strike", at=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.DEVICE_LOSS, at=-1e-9)

    def test_empty_device_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.DEVICE_LOSS, at=0.0, device="")

    def test_unknown_device_rejected_at_install(self):
        """Device *names* are only resolvable against a machine, so an
        unknown target fails when the schedule is installed."""
        from repro.core.runtime import FluidiCLRuntime
        from repro.faults import FaultSchedule, install_faults
        from repro.hw.machine import build_machine

        runtime = FluidiCLRuntime(build_machine())
        schedule = FaultSchedule(
            [FaultSpec(kind=FaultKind.DEVICE_LOSS, at=0.0, device="tpu")])
        with pytest.raises(ValueError, match="unknown device"):
            install_faults(runtime, schedule)

    def test_stall_needs_positive_duration(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.DEVICE_STALL, at=0.0, duration=0.0)

    def test_transfer_direction_checked(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.TRANSFER_FAULT, at=0.0, direction="d2d")

    def test_transfer_count_checked(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.TRANSFER_FAULT, at=0.0, count=0)

    def test_degrade_factor_range(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.LINK_DEGRADE, at=0.0, factor=0.0)
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.LINK_DEGRADE, at=0.0, factor=1.5)

    def test_describe_carries_kind_specific_fields(self):
        stall = FaultSpec(kind=FaultKind.DEVICE_STALL, at=0.5, duration=2.0)
        assert stall.describe()["duration"] == 2.0
        transfer = FaultSpec(kind=FaultKind.TRANSFER_FAULT, at=0.5,
                             direction="d2h", count=3)
        described = transfer.describe()
        assert described["direction"] == "d2h"
        assert described["count"] == 3


class TestFaultSchedule:
    def test_specs_sorted_by_time(self):
        schedule = FaultSchedule([
            FaultSpec(kind=FaultKind.DEVICE_LOSS, at=2.0),
            FaultSpec(kind=FaultKind.DEVICE_STALL, at=0.5, duration=1.0),
        ])
        assert [s.at for s in schedule] == [0.5, 2.0]

    def test_add_keeps_order(self):
        schedule = FaultSchedule.single(FaultKind.DEVICE_LOSS, at=2.0)
        schedule.add(FaultSpec(kind=FaultKind.DEVICE_STALL, at=1.0,
                               duration=1.0))
        assert [s.at for s in schedule] == [1.0, 2.0]
        assert len(schedule) == 2

    def test_single_builds_one_spec(self):
        schedule = FaultSchedule.single(
            FaultKind.TRANSFER_FAULT, at=1.0, direction="h2d", count=2
        )
        (spec,) = list(schedule)
        assert spec.kind is FaultKind.TRANSFER_FAULT
        assert spec.count == 2


class TestSeededSchedules:
    def test_same_seed_same_schedule(self):
        a = FaultSchedule.seeded(seed=7, window=(0.0, 1.0), n=5)
        b = FaultSchedule.seeded(seed=7, window=(0.0, 1.0), n=5)
        assert list(a) == list(b)

    def test_different_seed_differs(self):
        a = FaultSchedule.seeded(seed=7, window=(0.0, 1.0), n=5)
        b = FaultSchedule.seeded(seed=8, window=(0.0, 1.0), n=5)
        assert list(a) != list(b)

    def test_times_inside_window(self):
        schedule = FaultSchedule.seeded(seed=3, window=(0.25, 0.75), n=10)
        assert all(0.25 <= s.at <= 0.75 for s in schedule)

    def test_kind_filter_respected(self):
        schedule = FaultSchedule.seeded(
            seed=3, window=(0.0, 1.0), n=10,
            kinds=(FaultKind.DEVICE_STALL,),
        )
        assert all(s.kind is FaultKind.DEVICE_STALL for s in schedule)
