"""Watchdog deadline exactness on the integer-tick clock.

PR 2 shipped the watchdog with a float-ULP epsilon (``idle >= timeout *
0.999``) because the re-arm wakeup could land one ULP short of the
deadline and spin the loop forever.  On the tick clock the re-arm fires
at *exactly* the deadline instant and the trip test is exact integer
arithmetic, so the epsilon is gone — these tests pin both halves:

* no trip one heartbeat-width *early* (the 0.999 epsilon tripped a
  device that had made progress 0.1% of a timeout ago);
* a guaranteed trip at exactly ``last_progress + timeout``, including
  when the heartbeat instant carries sub-microsecond residue (the old
  ULP-starved spin case — this test hangs on the float engine).
"""

from repro.core.runtime import FluidiCLRuntime
from repro.core.watchdog import KernelWatchdog
from repro.hw.machine import build_machine
from repro.sim.timebase import TICKS_PER_US, to_ticks

TIMEOUT = 5e-3  # 5000 us, microsecond-aligned


def _runtime():
    machine = build_machine(trace=True)
    return machine, FluidiCLRuntime(machine)


class TestExactDeadline:
    def test_trips_exactly_at_armed_plus_timeout(self):
        machine, runtime = _runtime()
        engine = machine.engine
        device = runtime.gpu_device
        awaited = engine.event("never-fires")
        wd = KernelWatchdog(runtime, device, awaited, TIMEOUT, label="exact")
        engine.run()
        assert wd.tripped
        assert device.health.lost
        # Exactly 5000 us — not 4999.99-something, not one ULP short.
        assert engine.now == TIMEOUT
        assert engine.now_ticks == 5000 * TICKS_PER_US

    def test_heartbeat_defers_trip_to_exact_new_deadline(self):
        """A beat at 4 us must move the trip to exactly 5004 us.

        Pre-fix-failing case: the epsilon watchdog's first re-arm woke at
        5000 us where ``idle = 4996 us >= 0.999 * 5000 us`` and tripped
        the device 4 us *early* even though it had just made progress.
        """
        machine, runtime = _runtime()
        engine = machine.engine
        device = runtime.gpu_device
        awaited = engine.event("never-fires")
        beat_at = 4e-6

        def beater():
            yield engine.timeout(beat_at)
            device.health.beat()

        engine.process(beater())
        wd = KernelWatchdog(runtime, device, awaited, TIMEOUT, label="beat")
        engine.run()
        assert wd.tripped
        assert engine.now == 0.005004
        assert engine.now_ticks == 5004 * TICKS_PER_US

    def test_residue_heartbeat_terminates_exactly(self):
        """Heartbeat at a sub-microsecond-residue instant: the float
        engine's ``now + remaining == now`` ULP spin is impossible — the
        re-arm is an exact tick delta and the loop trips at exactly
        ``beat_ticks + timeout_ticks``."""
        machine, runtime = _runtime()
        engine = machine.engine
        device = runtime.gpu_device
        awaited = engine.event("never-fires")
        beat_at = (1 / 3) * 1e-5  # 3.333... us: carries tick residue

        def beater():
            yield engine.timeout(beat_at)
            device.health.beat()

        engine.process(beater())
        wd = KernelWatchdog(runtime, device, awaited, TIMEOUT, label="residue")
        engine.run()  # must terminate (the old engine could spin forever)
        assert wd.tripped
        assert engine.now_ticks == to_ticks(beat_at) + engine.delay_ticks(
            TIMEOUT
        )

    def test_no_trip_when_awaited_fires_first(self):
        machine, runtime = _runtime()
        engine = machine.engine
        device = runtime.gpu_device
        awaited = engine.event("finishes")
        wd = KernelWatchdog(runtime, device, awaited, TIMEOUT, label="ok")

        def finisher():
            yield engine.timeout(TIMEOUT - 1e-6)
            awaited.succeed()

        engine.process(finisher())
        engine.run()
        assert not wd.tripped
        assert not device.health.lost
