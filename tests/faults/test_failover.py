"""Graceful degradation end to end: under injected faults the runtime must
finish with correct numerics on the surviving device, emit the resilience
trace events, and refuse cleanly when recovery is genuinely impossible."""

import numpy as np
import pytest

from repro.core.config import FluidiCLConfig
from repro.core.runtime import FluidiCLRuntime
from repro.faults import FaultKind, FaultSchedule, install_faults
from repro.hw.machine import build_machine
from repro.ocl.health import DeviceLostError
from repro.ocl.ndrange import NDRange

from tests.conftest import make_scale_kernel

N = 256
LOCAL = 16
ALPHA = 2.5


def run_scale(schedule=None, config=None, gpu_eff=0.5, cpu_eff=0.5, n=N):
    """One scale-kernel run; returns (machine, runtime, y, expected)."""
    machine = build_machine(trace=True)
    runtime = FluidiCLRuntime(machine, config=config)
    if schedule is not None:
        install_faults(runtime, schedule)
    spec = make_scale_kernel(n, LOCAL, gpu_eff=gpu_eff, cpu_eff=cpu_eff,
                             work_scale=32.0)
    x = np.arange(n, dtype=np.float32)
    buf_x = runtime.create_buffer("x", (n,), np.float32)
    buf_y = runtime.create_buffer("y", (n,), np.float32)
    runtime.enqueue_write_buffer(buf_x, x)
    runtime.enqueue_nd_range_kernel(
        spec, NDRange(n, LOCAL), {"x": buf_x, "y": buf_y, "alpha": ALPHA}
    )
    y = np.zeros(n, dtype=np.float32)
    runtime.enqueue_read_buffer(buf_y, y)
    runtime.finish()
    runtime.drain()
    return machine, runtime, y, ALPHA * x


def first_kernel_midpoint(gpu_eff=0.5, cpu_eff=0.5) -> float:
    """Strike time inside the first kernel's GPU execution window."""
    _machine, runtime, _y, _exp = run_scale(gpu_eff=gpu_eff, cpu_eff=cpu_eff)
    begin, end = runtime.records[0].gpu_span
    assert end > begin
    return begin + 0.5 * (end - begin)


def events_named(machine, name):
    return [e for e in machine.tracer.events if e.name == name]


class TestGpuLossFailover:
    def test_cpu_completes_and_numerics_hold(self):
        strike = first_kernel_midpoint()
        machine, runtime, y, expected = run_scale(
            FaultSchedule.single(FaultKind.DEVICE_LOSS, at=strike,
                                 device="gpu"))
        np.testing.assert_array_equal(y, expected)
        record = runtime.records[0]
        assert record.failover
        assert record.cpu_completed_all
        assert record.gpu_groups == 0
        assert runtime.stats.extra["failovers"] == 1
        assert runtime.stats.extra["kernels_failover"] == 1
        (event,) = events_named(machine, "failover")
        assert event.attrs["lost"] == "gpu"
        assert event.attrs["survivor"] == "cpu"

    def test_no_status_delivery_after_failover(self):
        """The board is finalized on failover; in-flight status callbacks
        on the dead device cancel instead of delivering (section 5.3)."""
        strike = first_kernel_midpoint()
        machine, _runtime, _y, _exp = run_scale(
            FaultSchedule.single(FaultKind.DEVICE_LOSS, at=strike,
                                 device="gpu"))
        from repro.obs.events import EventKind

        (failover,) = events_named(machine, "failover")
        late = [e for e in machine.tracer.by_kind(EventKind.STATUS)
                if e.ts >= failover.ts]
        assert late == []


class TestCpuLossFailover:
    def test_gpu_carries_kernel_alone(self):
        strike = first_kernel_midpoint()
        machine, runtime, y, expected = run_scale(
            FaultSchedule.single(FaultKind.DEVICE_LOSS, at=strike,
                                 device="cpu"))
        np.testing.assert_array_equal(y, expected)
        assert runtime.stats.extra["failovers"] == 1
        (event,) = events_named(machine, "failover")
        assert event.attrs["lost"] == "cpu"
        assert event.attrs["survivor"] == "gpu"


class TestTransientTransferFaults:
    def test_bounded_retry_preserves_numerics(self):
        machine, runtime, y, expected = run_scale(
            FaultSchedule.single(FaultKind.TRANSFER_FAULT, at=0.0,
                                 device="gpu", direction="h2d", count=2))
        np.testing.assert_array_equal(y, expected)
        assert runtime.gpu_device.health.transfer_retries == 2
        retries = events_named(machine, "transfer")
        assert len(retries) == 2
        # Both pending failures hit the first transfer to start, which
        # retried twice (attempt numbers are per transfer, not global).
        assert [e.attrs["attempt"] for e in retries] == [1, 2]
        assert not runtime.gpu_device.health.lost

    def test_retry_exhaustion_escalates_to_loss(self):
        machine, runtime, y, expected = run_scale(
            FaultSchedule.single(FaultKind.TRANSFER_FAULT, at=0.0,
                                 device="gpu", direction="h2d", count=5),
            config=FluidiCLConfig(transfer_max_retries=1))
        # The GPU is declared lost, the CPU finishes the kernel alone.
        np.testing.assert_array_equal(y, expected)
        assert runtime.gpu_device.health.lost
        assert "retries exhausted" in runtime.gpu_device.health.lost_reason
        assert runtime.stats.extra["failovers"] >= 1


class TestWatchdog:
    def test_stall_escalates_to_loss_and_failover(self):
        # GPU-dominant and large enough for many waves, so a wave boundary
        # observes the stall while the host is blocked on the kernel event.
        kw = dict(gpu_eff=0.9, cpu_eff=0.1, n=4096)
        _machine, ref_runtime, _y, _exp = run_scale(**kw)
        begin, end = ref_runtime.records[0].gpu_span
        strike = begin + 0.5 * (end - begin)
        timeout = 2.0 * (end - begin)
        machine, runtime, y, expected = run_scale(
            FaultSchedule.single(FaultKind.DEVICE_STALL, at=strike,
                                 device="gpu", duration=100.0 * timeout),
            config=FluidiCLConfig(watchdog_timeout=timeout), **kw)
        np.testing.assert_array_equal(y, expected)
        assert runtime.stats.extra["watchdog_trips"] == 1
        (degraded,) = events_named(machine, "device_degraded")
        assert degraded.attrs["device"] == runtime.gpu_device.name
        (failover,) = events_named(machine, "failover")
        assert failover.ts >= degraded.ts
        assert "watchdog" in runtime.gpu_device.health.lost_reason

    def test_transient_stall_is_ridden_out(self):
        """A stall shorter than the watchdog limit must not trip it."""
        strike = first_kernel_midpoint()
        machine, runtime, y, expected = run_scale(
            FaultSchedule.single(FaultKind.DEVICE_STALL, at=strike,
                                 device="gpu", duration=1e-5))
        np.testing.assert_array_equal(y, expected)
        assert runtime.stats.extra["watchdog_trips"] == 0
        assert events_named(machine, "failover") == []

    def test_tight_timeout_terminates(self):
        """Regression: a wakeup landing one float ULP before the idle
        deadline used to freeze the clock and re-arm forever."""
        from repro.polybench.suite import make_app

        machine = build_machine(trace=True)
        runtime = FluidiCLRuntime(
            machine, FluidiCLConfig(watchdog_timeout=1e-4))
        install_faults(runtime, FaultSchedule.single(
            FaultKind.DEVICE_STALL, at=2.9e-4, device="gpu", duration=10.0))
        app = make_app("gesummv", "test")
        result = app.execute(runtime, check=True)
        runtime.drain()
        assert result.correct
        assert runtime.stats.extra["watchdog_trips"] == 1


class TestUnrecoverableWindow:
    def test_loss_holding_sole_copy_raises_cleanly(self):
        """A device lost while it holds the only copy of committed data is
        honestly unrecoverable: the read must raise, never hand back a
        zero-filled destination as if it were results."""
        machine = build_machine(trace=True)
        runtime = FluidiCLRuntime(machine)
        spec = make_scale_kernel(N, LOCAL, gpu_eff=0.9, cpu_eff=0.1,
                                 work_scale=32.0)
        x = np.arange(N, dtype=np.float32)
        buf_x = runtime.create_buffer("x", (N,), np.float32)
        buf_y = runtime.create_buffer("y", (N,), np.float32)
        runtime.enqueue_write_buffer(buf_x, x)
        record = runtime.enqueue_nd_range_kernel(
            spec, NDRange(N, LOCAL), {"x": buf_x, "y": buf_y, "alpha": ALPHA}
        )
        assert not record.cpu_completed_all  # result committed GPU-side
        # The GPU dies right after the commit, before the background
        # device-to-host read-back could deliver a CPU copy.
        runtime.gpu_device.health.declare_lost("post-commit loss")
        y = np.zeros(N, dtype=np.float32)
        with pytest.raises(DeviceLostError):
            runtime.enqueue_read_buffer(buf_y, y)

    def test_both_devices_lost_rejects_writes(self):
        machine = build_machine()
        runtime = FluidiCLRuntime(machine)
        runtime.gpu_device.health.declare_lost("gone")
        runtime.cpu_device.health.declare_lost("gone")
        buf = runtime.create_buffer("x", (8,), np.float32)
        with pytest.raises(DeviceLostError):
            runtime.enqueue_write_buffer(buf, np.ones(8, dtype=np.float32))
