"""Artifact hygiene: benchmark and CLI runs never dirty the working tree.

Tracked outputs (``benchmarks/results/*.txt`` goldens, committed
``BENCH_<n>.json`` snapshots) are only ever (re)written behind explicit
flags; everything a default run produces is either git-ignored
(``BENCH_*.json``) or routed under ``out/``.
"""

import importlib.util
import pathlib
import re
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _git(*args: str) -> str:
    try:
        proc = subprocess.run(
            ["git", *args], cwd=REPO_ROOT, capture_output=True, text=True,
            timeout=60,
        )
    except (OSError, subprocess.TimeoutExpired):
        pytest.skip("git unavailable")
    if proc.returncode not in (0, 1):  # check-ignore uses 1 for "not ignored"
        pytest.skip(f"git {args[0]} failed: {proc.stderr.strip()}")
    return proc.stdout


def _load_benchmarks_conftest():
    path = REPO_ROOT / "benchmarks" / "conftest.py"
    spec = importlib.util.spec_from_file_location("_bench_conftest", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestResultRouting:
    def test_default_results_dir_is_untracked_out(self):
        conftest = _load_benchmarks_conftest()
        default_dir = conftest.results_dir_for(False)
        assert default_dir == REPO_ROOT / "out" / "benchmarks" / "results"

    def test_golden_flag_routes_to_tracked_results(self):
        conftest = _load_benchmarks_conftest()
        golden_dir = conftest.results_dir_for(True)
        assert golden_dir == REPO_ROOT / "benchmarks" / "results"

    def test_record_result_default_writes_under_out(self, tmp_path,
                                                    monkeypatch):
        conftest = _load_benchmarks_conftest()
        monkeypatch.setattr(conftest, "OUT_RESULTS_DIR",
                            tmp_path / "out" / "results")
        monkeypatch.setattr(conftest, "RESULTS_DIR", tmp_path / "golden")

        class FakeResult:
            experiment_id = "figX"

            def render(self):
                return "table"

        class FakeConfig:
            @staticmethod
            def getoption(name):
                assert name == "--update-golden-results"
                return False

        class FakeRequest:
            config = FakeConfig()

        fixture_fn = getattr(conftest.record_result, "__wrapped__",
                             conftest.record_result)
        record = fixture_fn(FakeRequest())
        record(FakeResult())
        assert (tmp_path / "out" / "results" / "figX.txt").read_text() == \
            "table\n"
        assert not (tmp_path / "golden").exists()


class TestBenchSnapshotHygiene:
    def test_bench_snapshots_are_gitignored(self):
        out = _git("check-ignore", "BENCH_99.json")
        assert "BENCH_99.json" in out

    def test_next_snapshot_path_never_reuses_existing(self, tmp_path):
        sys.path.insert(0, str(REPO_ROOT / "src"))
        try:
            from repro.bench.snapshot import next_snapshot_path
        finally:
            sys.path.pop(0)
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_7.json").write_text("{}")
        assert next_snapshot_path(str(tmp_path)).endswith("BENCH_8.json")

    def test_bench_smoke_run_leaves_working_tree_clean(self):
        """The acceptance path: a real `harness bench` smoke run at the repo
        root must not change `git status` (the fresh snapshot is ignored)."""
        from repro.harness.bench_cli import bench_main

        before = _git("status", "--porcelain")
        existing = {p.name for p in REPO_ROOT.glob("BENCH_*.json")}
        code = bench_main([
            "--smoke", "--micro-only", "--repeats", "1", "--warmup", "0",
            "--baseline", "none", "--dir", str(REPO_ROOT),
        ])
        created = {
            p.name for p in REPO_ROOT.glob("BENCH_*.json")
        } - existing
        try:
            assert code == 0
            after = _git("status", "--porcelain")
            assert after == before
            assert len(created) == 1
            assert re.match(r"BENCH_\d+\.json", next(iter(created)))
        finally:
            for name in created:
                (REPO_ROOT / name).unlink()
