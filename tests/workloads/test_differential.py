"""Differential-oracle layer for the irregular-workload suite.

Every irregular app is designed so that partitioning cannot change the
numerics: all floating-point reductions happen privately inside one
work-group, in a fixed order.  That turns the usual rtol comparison into
a much stronger oracle — cooperative N-device runs, single-device runs
and a pure-NumPy float32 mimic of the kernels (``exact_reference``) must
agree **bit for bit**, with the CoherenceMonitor watching every run.
The float64 ``reference`` additionally bounds the float32 arithmetic.
"""

import numpy as np
import pytest

from repro.check.monitor import CoherenceMonitor
from repro.core.runtime import FluidiCLRuntime
from repro.hw.machine import build_machine
from repro.hw.specs import DeviceKind
from repro.ocl.runtime import SingleDeviceRuntime
from repro.polybench.suite import make_app

IRREGULAR = ("spmv", "histogram", "bfs", "scan")
PIPELINES = ("2mm", "3mm", "bfs", "scan")
PRESETS = ("default", "cpu+2gpu", "cpu+3gpu")


def run_cooperative(app_name, preset):
    """One monitored cooperative run; returns (outputs, inputs, monitor)."""
    machine = build_machine(preset=preset, trace=True)
    runtime = FluidiCLRuntime(machine)
    monitor = CoherenceMonitor().attach(machine.tracer)
    app = make_app(app_name, "test")
    inputs = app.fresh_inputs()
    outputs = app.host_program(runtime, inputs)
    runtime.finish()
    runtime.drain()
    monitor.final_check(aborted=False)
    return outputs, inputs, monitor


def run_single(app_name, kind):
    machine = build_machine()
    runtime = SingleDeviceRuntime(machine, kind)
    app = make_app(app_name, "test")
    inputs = app.fresh_inputs()
    outputs = app.host_program(runtime, inputs)
    runtime.finish()
    return outputs, inputs


def assert_bitwise(outputs, expected, context):
    assert set(outputs) == set(expected), context
    for key, want in expected.items():
        got = outputs[key]
        assert got.dtype == want.dtype, f"{context}: dtype drift on {key!r}"
        assert got.tobytes() == want.tobytes(), (
            f"{context}: output {key!r} is not bit-identical "
            f"(max abs diff {np.max(np.abs(got.astype(np.float64) - want.astype(np.float64)))})"
        )


class TestCooperativeVsNumpy:
    """Cooperative runs on every preset == the float32 NumPy kernel mimic."""

    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("app_name", IRREGULAR)
    def test_bitwise_and_invariant_clean(self, app_name, preset):
        outputs, inputs, monitor = run_cooperative(app_name, preset)
        assert not monitor.violations, "\n".join(
            str(v) for v in monitor.violations)
        assert monitor.checks > 0
        app = make_app(app_name, "test")
        assert_bitwise(outputs, app.exact_reference(inputs),
                       f"{app_name} cooperative on {preset}")


class TestSingleDeviceVsNumpy:
    """Both vendor-runtime baselines == the float32 NumPy kernel mimic."""

    @pytest.mark.parametrize("kind", (DeviceKind.GPU, DeviceKind.CPU))
    @pytest.mark.parametrize("app_name", IRREGULAR)
    def test_bitwise(self, app_name, kind):
        outputs, inputs = run_single(app_name, kind)
        app = make_app(app_name, "test")
        assert_bitwise(outputs, app.exact_reference(inputs),
                       f"{app_name} on single {kind}")


class TestFloat64Oracle:
    """The float32 pipeline stays within rtol of the float64 reference."""

    @pytest.mark.parametrize("app_name", IRREGULAR)
    def test_cooperative_within_tolerance(self, app_name):
        app = make_app(app_name, "test")
        runtime = FluidiCLRuntime(build_machine(preset="cpu+2gpu"))
        result = app.execute(runtime, check=True)
        runtime.drain()
        assert result.correct, (
            f"{app_name}: max rel err {result.max_relative_error:.3e}")


class TestPipelineAppsCooperativeVsSingle:
    """Every PipelineApp: cooperative == single-device, bit for bit.

    2mm/3mm have no order-independent float32 mimic (their tiles reduce
    across the full inner dimension), but per-work-group computation is
    deterministic — so the cooperative result must equal the GPU-only
    baseline exactly, on every preset.
    """

    @pytest.mark.parametrize("preset", PRESETS)
    @pytest.mark.parametrize("app_name", PIPELINES)
    def test_bitwise_vs_gpu_baseline(self, app_name, preset):
        coop, _inputs, monitor = run_cooperative(app_name, preset)
        assert not monitor.violations
        single, _ = run_single(app_name, DeviceKind.GPU)
        assert_bitwise(coop, single,
                       f"{app_name} cooperative {preset} vs gpu-only")
