"""Unit tests of the PipelineApp abstraction itself.

Validation must reject inconsistent pipelines before any simulated work
runs; ``dependency_edges`` must expose the declared producer → consumer
graph; the :class:`PipelineHost` façade must hold host stages to their
declared reads/writes.
"""

import numpy as np
import pytest

from repro.hw.cost import WorkGroupCost
from repro.kernels.dsl import Intent, KernelSpec, buffer_arg, scalar_arg
from repro.ocl.ndrange import NDRange
from repro.polybench.suite import make_app
from repro.workloads.pipeline import (
    BufferDecl,
    HostStage,
    KernelStage,
    PipelineError,
    PipelineHost,
    WhileStage,
    dependency_edges,
    validate_pipeline,
)


def _body(ctx):
    lo, hi = ctx.item_range(0)
    ctx["dst"][lo:hi] = ctx["src"][lo:hi]


COST = WorkGroupCost(flops=64.0, bytes_read=256, bytes_written=256)


def copy_spec(name="copy"):
    return KernelSpec(
        name=name,
        args=(buffer_arg("src"), buffer_arg("dst", Intent.OUT)),
        body=_body,
        cost=COST,
    )


def decls():
    return [
        BufferDecl("a", (64,), np.float32, init="a"),
        BufferDecl("b", (64,), np.float32),
        BufferDecl("c", (64,), np.float32, read="c"),
    ]


ND = NDRange(64, 32)


class TestValidation:
    def test_valid_chain_passes(self):
        validate_pipeline(decls(), [
            KernelStage(copy_spec("k1"), ND, {"src": "a", "dst": "b"}),
            KernelStage(copy_spec("k2"), ND, {"src": "b", "dst": "c"}),
        ])

    def test_duplicate_buffer_decls(self):
        with pytest.raises(PipelineError, match="duplicate"):
            validate_pipeline(decls() + [BufferDecl("a", (4,))], [])

    def test_use_before_def(self):
        with pytest.raises(PipelineError, match="before anything writes"):
            validate_pipeline(decls(), [
                KernelStage(copy_spec(), ND, {"src": "b", "dst": "c"}),
            ])

    def test_undeclared_buffer_read(self):
        with pytest.raises(PipelineError, match="undeclared"):
            validate_pipeline(decls(), [
                KernelStage(copy_spec(), ND, {"src": "nope", "dst": "b"}),
            ])

    def test_unbound_argument(self):
        with pytest.raises(PipelineError, match="unbound"):
            validate_pipeline(decls(), [
                KernelStage(copy_spec(), ND, {"src": "a"}),
            ])

    def test_unknown_bind(self):
        with pytest.raises(PipelineError, match="unknown arguments"):
            validate_pipeline(decls(), [
                KernelStage(copy_spec(), ND,
                            {"src": "a", "dst": "b", "bogus": "c"}),
            ])

    def test_buffer_arg_bound_to_non_name(self):
        with pytest.raises(PipelineError, match="must be bound to a buffer"):
            validate_pipeline(decls(), [
                KernelStage(copy_spec(), ND, {"src": "a", "dst": 3.0}),
            ])

    def test_scalar_arg_bound_to_buffer_name(self):
        spec = KernelSpec(
            name="scaled",
            args=(buffer_arg("src"), buffer_arg("dst", Intent.OUT),
                  scalar_arg("alpha")),
            body=_body,
            cost=COST,
        )
        with pytest.raises(PipelineError, match="scalar argument"):
            validate_pipeline(decls(), [
                KernelStage(spec, ND, {"src": "a", "dst": "b", "alpha": "c"}),
            ])

    def test_never_written_output(self):
        with pytest.raises(PipelineError, match="never"):
            validate_pipeline(decls(), [
                KernelStage(copy_spec(), ND, {"src": "a", "dst": "b"}),
            ])

    def test_host_stage_use_before_def(self):
        with pytest.raises(PipelineError, match="before anything writes"):
            validate_pipeline(decls(), [
                HostStage("peek", lambda host, state: None, reads=("b",)),
            ])

    def test_loop_carried_write_is_defined_inside_loop(self):
        # "b" is only written inside the loop body, yet the body's first
        # stage may read it: the value comes from the previous iteration
        # (iteration 1 reads what "k_init" wrote before the loop).
        validate_pipeline(decls(), [
            KernelStage(copy_spec("k_init"), ND, {"src": "a", "dst": "b"}),
            WhileStage(
                name="iterate",
                cond=lambda state: False,
                body=(
                    KernelStage(copy_spec("k_step"), ND,
                                {"src": "b", "dst": "c"}),
                    KernelStage(copy_spec("k_back"), ND,
                                {"src": "c", "dst": "b"}),
                ),
            ),
            KernelStage(copy_spec("k_out"), ND, {"src": "b", "dst": "c"}),
        ])


class TestDependencyEdges:
    def test_chain_edges(self):
        edges = dependency_edges(decls(), [
            KernelStage(copy_spec("k1"), ND, {"src": "a", "dst": "b"}),
            KernelStage(copy_spec("k2"), ND, {"src": "b", "dst": "c"}),
        ])
        assert ("<host-init>", "a", "k1") in edges
        assert ("k1", "b", "k2") in edges

    def test_3mm_diamond(self):
        app = make_app("3mm", "test")
        edges = set(app.dependency_edges())
        assert ("mm3_kernel1", "E", "mm3_kernel3") in edges
        assert ("mm3_kernel2", "F", "mm3_kernel3") in edges

    def test_scan_host_stage_edges(self):
        app = make_app("scan", "test")
        edges = set(app.dependency_edges())
        assert ("scan_upsweep", "sums", "scan_offsets") in edges
        assert ("scan_offsets", "offsets", "scan_downsweep") in edges

    def test_bfs_loop_carried_frontier(self):
        app = make_app("bfs", "test")
        edges = set(app.dependency_edges())
        # inside the level loop the frontier read points at the in-loop
        # producer (the advance host stage), not at the host init
        assert ("bfs_advance", "front", "bfs_expand") in edges
        assert ("bfs_update", "nextf", "bfs_advance") in edges


class TestPipelineHost:
    def test_undeclared_read_rejected(self):
        stage = HostStage("s", lambda host, state: None, reads=("sums",))
        host = PipelineHost(None, {}, {}, stage)
        with pytest.raises(PipelineError, match="without"):
            host.read("offsets")

    def test_undeclared_write_rejected(self):
        stage = HostStage("s", lambda host, state: None, writes=("offsets",))
        host = PipelineHost(None, {}, {}, stage)
        with pytest.raises(PipelineError, match="without"):
            host.write("sums", np.zeros(4))


class TestAppDefaults:
    def test_kernel_specs_deduplicate_loop_bodies(self):
        app = make_app("bfs", "test")
        names = [s.name for s in app.kernel_specs()]
        assert names == ["bfs_expand", "bfs_update"]

    def test_bfs_kernel_metas_follow_level_schedule(self):
        app = make_app("bfs", "test")
        metas = app.kernel_metas()
        assert len(metas) >= 2 and len(metas) % 2 == 0
        assert [m.name for m in metas[:2]] == ["bfs_expand", "bfs_update"]

    def test_refactored_2mm_metas_unchanged(self):
        app = make_app("2mm", "test")
        assert [(m.name, m.ndrange.global_size) for m in app.kernel_metas()] \
            == [("mm2_kernel1", (128, 128)), ("mm2_kernel2", (128, 128))]

    def test_while_stage_iteration_cap(self):
        app = make_app("2mm", "test")
        runaway = WhileStage(name="spin", cond=lambda state: True, body=(),
                             max_iterations=3)
        with pytest.raises(PipelineError, match="exceeded 3 iterations"):
            app._run_stages(None, {}, {}, {}, [runaway])
