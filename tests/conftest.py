"""Shared fixtures: simulation engines, machines and toy kernels.

The toy kernels used throughout the suite are small vector/matrix kernels
whose per-device efficiency can be dialed to force each FluidiCL regime:
GPU-dominant (the CPU never contributes), CPU-dominant (the CPU computes
the whole NDRange first) and balanced (both devices contribute and the
merge path runs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.cost import WorkGroupCost
from repro.hw.machine import build_machine
from repro.kernels.dsl import Intent, KernelSpec, buffer_arg, scalar_arg
from repro.ocl.ndrange import NDRange
from repro.sim.core import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def machine():
    return build_machine()


@pytest.fixture
def traced_machine():
    return build_machine(trace=True)


def make_scale_kernel(n, local_size=16, gpu_eff=0.5, cpu_eff=0.5,
                      loop_iters=32, name="scale", work_scale=1.0):
    """``y = alpha * x`` over ``n`` elements, one row-block per work-group.

    ``work_scale`` inflates the modeled per-work-group cost (as if each
    element required that much more streaming) so tests can make kernels
    long enough for cooperative execution to kick in despite the CPU
    runtime's launch overhead.
    """

    def body(ctx):
        rows = ctx.rows()
        ctx["y"][rows] = ctx["alpha"] * ctx["x"][rows]

    itemsize = 4
    cost = WorkGroupCost(
        flops=float(local_size) * work_scale,
        bytes_read=float(local_size * itemsize * 64) * work_scale,
        bytes_written=float(local_size * itemsize * 64) * work_scale,
        loop_iters=loop_iters,
        compute_efficiency={"cpu": cpu_eff, "gpu": gpu_eff},
        memory_efficiency={"cpu": cpu_eff, "gpu": gpu_eff},
    )
    return KernelSpec(
        name=name,
        args=(buffer_arg("x"), buffer_arg("y", Intent.OUT), scalar_arg("alpha")),
        body=body,
        cost=cost,
    )


def make_accumulate_kernel(n, local_size=16, gpu_eff=0.5, cpu_eff=0.5,
                           name="accumulate"):
    """``y += x`` (inout): exercises the read-modify-write merge path."""

    def body(ctx):
        rows = ctx.rows()
        ctx["y"][rows] = ctx["y"][rows] + ctx["x"][rows]

    cost = WorkGroupCost(
        flops=float(local_size),
        bytes_read=float(local_size * 8 * 64),
        bytes_written=float(local_size * 4 * 64),
        loop_iters=16,
        compute_efficiency={"cpu": cpu_eff, "gpu": gpu_eff},
        memory_efficiency={"cpu": cpu_eff, "gpu": gpu_eff},
    )
    return KernelSpec(
        name=name,
        args=(buffer_arg("x"), buffer_arg("y", Intent.INOUT)),
        body=body,
        cost=cost,
    )


@pytest.fixture
def scale_kernel():
    return make_scale_kernel


@pytest.fixture
def accumulate_kernel():
    return make_accumulate_kernel


def ndrange_1d(n, local_size=16):
    return NDRange(n, local_size)


def run_fluidicl_scale(n=256, local_size=16, gpu_eff=0.5, cpu_eff=0.5,
                       config=None, seed=3, work_scale=32.0):
    """Run the scale kernel under FluidiCL; returns (runtime, y, expected).

    The default ``work_scale`` makes the kernel long enough (hundreds of
    microseconds) that CPU subkernels can genuinely contribute.
    """
    from repro.core.runtime import FluidiCLRuntime

    machine = build_machine()
    runtime = FluidiCLRuntime(machine, config=config)
    spec = make_scale_kernel(n, local_size, gpu_eff, cpu_eff,
                             work_scale=work_scale)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n).astype(np.float32)
    buf_x = runtime.create_buffer("x", (n,), np.float32)
    buf_y = runtime.create_buffer("y", (n,), np.float32)
    runtime.enqueue_write_buffer(buf_x, x)
    runtime.enqueue_nd_range_kernel(
        spec, NDRange(n, local_size), {"x": buf_x, "y": buf_y, "alpha": 2.5}
    )
    y = np.zeros(n, dtype=np.float32)
    runtime.enqueue_read_buffer(buf_y, y)
    runtime.finish()
    return runtime, y, (2.5 * x)
