"""The runtime lint gate: off / warn / strict, and the corruption it stops.

The end-to-end scenario is the paper's §4.1 failure mode made concrete: a
buffer the body writes but the signature declares ``in`` never enters
``out_args``, so FluidiCL neither merges the CPU partition's results nor
commits the GPU's — the host reads back data that is wrong wherever the
other device computed.  The strict gate refuses to launch such a kernel at
all; warn mode launches it but emits a typed ``lint_finding`` event.
"""

import numpy as np
import pytest

from repro.analysis import LintError
from repro.core.config import FluidiCLConfig
from repro.core.runtime import FluidiCLRuntime
from repro.hw.cost import WorkGroupCost
from repro.hw.machine import build_machine
from repro.kernels.dsl import Intent, KernelSpec, buffer_arg
from repro.obs.events import EventKind
from repro.ocl.ndrange import NDRange

N, LOCAL = 256, 16


def _mis_declared_scale_kernel(declared=Intent.IN):
    """``y = 2x`` whose output intent is under-declared by default."""

    def body(ctx):
        rows = ctx.rows()
        ctx["y"][rows] = 2.0 * ctx["x"][rows]

    cost = WorkGroupCost(
        flops=LOCAL * 32.0,
        bytes_read=LOCAL * 4 * 64.0 * 32,
        bytes_written=LOCAL * 4 * 64.0 * 32,
        loop_iters=32,
        compute_efficiency={"cpu": 0.5, "gpu": 0.5},
        memory_efficiency={"cpu": 0.5, "gpu": 0.5},
    )
    return KernelSpec(
        name="mis_declared_scale",
        args=(buffer_arg("x"), buffer_arg("y", declared)),
        body=body,
        cost=cost,
    )


def _run(spec, lint, trace=False):
    machine = build_machine(trace=trace)
    runtime = FluidiCLRuntime(machine, config=FluidiCLConfig(lint=lint))
    rng = np.random.default_rng(11)
    x = rng.standard_normal(N).astype(np.float32)
    buf_x = runtime.create_buffer("x", (N,), np.float32)
    buf_y = runtime.create_buffer("y", (N,), np.float32)
    runtime.enqueue_write_buffer(buf_x, x)
    runtime.enqueue_nd_range_kernel(
        spec, NDRange(N, LOCAL), {"x": buf_x, "y": buf_y})
    y = np.zeros(N, dtype=np.float32)
    runtime.enqueue_read_buffer(buf_y, y)
    runtime.finish()
    return runtime, machine, x, y


class TestStrictGate:
    def test_strict_refuses_unsafe_kernel_before_launch(self):
        machine = build_machine(trace=True)
        runtime = FluidiCLRuntime(machine,
                                  config=FluidiCLConfig(lint="strict"))
        spec = _mis_declared_scale_kernel()
        buf_x = runtime.create_buffer("x", (N,), np.float32)
        buf_y = runtime.create_buffer("y", (N,), np.float32)
        with pytest.raises(LintError) as excinfo:
            runtime.enqueue_nd_range_kernel(
                spec, NDRange(N, LOCAL), {"x": buf_x, "y": buf_y})
        assert "FK101" in str(excinfo.value)
        # refused *before* launch: no kernel record, no kernel event
        assert runtime.records == []
        assert not [e for e in machine.tracer.events
                    if e.kind is EventKind.KERNEL]

    def test_strict_passes_clean_kernel(self):
        spec = _mis_declared_scale_kernel(declared=Intent.OUT)
        _, _, x, y = _run(spec, lint="strict")
        np.testing.assert_allclose(y, 2.0 * x, rtol=1e-6)

    def test_lint_error_carries_reports(self):
        machine = build_machine()
        runtime = FluidiCLRuntime(machine,
                                  config=FluidiCLConfig(lint="strict"))
        spec = _mis_declared_scale_kernel()
        buf_x = runtime.create_buffer("x", (N,), np.float32)
        buf_y = runtime.create_buffer("y", (N,), np.float32)
        with pytest.raises(LintError) as excinfo:
            runtime.enqueue_nd_range_kernel(
                spec, NDRange(N, LOCAL), {"x": buf_x, "y": buf_y})
        reports = excinfo.value.reports
        assert any(not r.fluidic_safe for r in reports)


class TestWarnGate:
    def test_warn_emits_event_and_launches(self):
        spec = _mis_declared_scale_kernel()
        runtime, machine, _, _ = _run(spec, lint="warn", trace=True)
        lint_events = [e for e in machine.tracer.events
                       if e.kind is EventKind.LINT]
        assert len(lint_events) == 1
        event = lint_events[0]
        assert event["rule"] == "FK101"
        assert event["kernel"] == "mis_declared_scale"
        assert event["severity"] == "error"
        assert runtime.metrics.counter("lint_findings").value == 1
        # the kernel still ran
        assert len(runtime.records) == 1

    def test_warn_deduplicates_per_runtime(self):
        spec = _mis_declared_scale_kernel()
        machine = build_machine(trace=True)
        runtime = FluidiCLRuntime(machine, config=FluidiCLConfig(lint="warn"))
        buf_x = runtime.create_buffer("x", (N,), np.float32)
        buf_y = runtime.create_buffer("y", (N,), np.float32)
        for _ in range(3):
            runtime.enqueue_nd_range_kernel(
                spec, NDRange(N, LOCAL), {"x": buf_x, "y": buf_y})
        runtime.finish()
        lint_events = [e for e in machine.tracer.events
                       if e.kind is EventKind.LINT]
        assert len(lint_events) == 1

    def test_warn_is_silent_on_clean_kernels(self):
        spec = _mis_declared_scale_kernel(declared=Intent.OUT)
        _, machine, _, _ = _run(spec, lint="warn", trace=True)
        assert not [e for e in machine.tracer.events
                    if e.kind is EventKind.LINT]


class TestOffGate:
    def test_off_skips_analysis(self):
        spec = _mis_declared_scale_kernel()
        runtime, machine, _, _ = _run(spec, lint="off", trace=True)
        assert not [e for e in machine.tracer.events
                    if e.kind is EventKind.LINT]
        assert runtime.metrics.counter("lint_findings").value == 0

    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            FluidiCLConfig(lint="loud")


class TestEndToEndCorruption:
    """The failure the linter prevents, demonstrated for real."""

    def test_under_declared_out_corrupts_cooperative_result(self):
        # control: correctly declared, same config → correct result
        good = _mis_declared_scale_kernel(declared=Intent.OUT)
        _, _, x, y = _run(good, lint="off")
        np.testing.assert_allclose(y, 2.0 * x, rtol=1e-6)

        # under-declared: y never enters out_args, so the runtime neither
        # merges CPU results nor commits GPU results — the read-back is
        # wrong wherever the *other* device computed
        bad = _mis_declared_scale_kernel(declared=Intent.IN)
        _, _, x, y = _run(bad, lint="off")
        assert not np.allclose(y, 2.0 * x, rtol=1e-6)

    def test_strict_gate_prevents_the_corruption(self):
        bad = _mis_declared_scale_kernel(declared=Intent.IN)
        with pytest.raises(LintError):
            _run(bad, lint="strict")
