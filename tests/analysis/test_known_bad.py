"""Known-bad fixtures are flagged; the real suite lints clean.

Mirrors ``check --known-bad``: the planted defects guard the analyzer
against regressions, and the suite-wide clean run guards the kernels
against declared-intent drift (ISSUE satellite: "the whole suite lints
clean").
"""

import os

import pytest

from repro.analysis import analyze_kernel, analyze_specs
from repro.analysis.known_bad import KNOWN_BAD_CASES, known_bad_case
from repro.polybench.suite import EXTENDED_SUITE, make_app

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


class TestKnownBad:
    @pytest.mark.parametrize("case", KNOWN_BAD_CASES,
                             ids=[c.name for c in KNOWN_BAD_CASES])
    def test_case_flags_expected_rule(self, case):
        report = analyze_kernel(case.spec(),
                                abort_in_loops=case.abort_in_loops,
                                loop_unroll=case.loop_unroll)
        assert case.expected_rule in report.rule_ids(), report.render()

    def test_error_cases_are_not_fluidic_safe(self):
        for case in KNOWN_BAD_CASES:
            report = analyze_kernel(case.spec(),
                                    abort_in_loops=case.abort_in_loops,
                                    loop_unroll=case.loop_unroll)
            expected = report.findings[0].rule
            if any(f.rule_id == case.expected_rule
                   and f.severity.value == "error" for f in report.findings):
                assert not report.fluidic_safe, (case.name, expected)

    def test_lookup_by_name(self):
        assert known_bad_case("under-declared-out").expected_rule == "FK101"
        with pytest.raises(KeyError):
            known_bad_case("no-such-case")


class TestSuiteLintsClean:
    @pytest.mark.parametrize("app_name", EXTENDED_SUITE)
    def test_polybench_app_lints_clean(self, app_name):
        app = make_app(app_name, scale="test")
        specs = app.kernel_specs()
        assert specs, f"{app_name} must expose kernel_specs()"
        for report in analyze_specs(specs):
            assert not report.findings, report.render()

    def test_corr_tuned_version_lints_clean(self):
        app = make_app("corr", scale="test")
        app.provide_cpu_tuned_kernel = True
        reports = analyze_specs(app.kernel_specs())
        assert any(r.version == "loop_interchanged" for r in reports)
        for report in reports:
            assert not report.findings, report.render()

    def test_example_kernels_lint_clean(self):
        from repro.harness.lint_cli import _example_factories

        factories = _example_factories(os.path.join(REPO_ROOT, "examples"))
        assert factories, "examples/ must contain kernel factories"
        for label, factory in factories:
            report = analyze_kernel(factory())
            assert not report.findings, f"{label}: {report.render()}"
