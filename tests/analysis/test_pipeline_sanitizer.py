"""The runtime sanitizer: observed dataflow vs. the static prediction.

Unit level: a :class:`PipelineSanitizer` fed synthetic ``kernel_begin`` /
``commit`` / ``buffer_write`` / ``buffer_read`` events must attribute
versions to producers exactly as :mod:`repro.core.buffers` defines them
(versions *are* kernel ids) and flag FK591/FK592 divergences.

Integration level: the :class:`PipelineApp` wiring attaches the sanitizer
to every traced, linted cooperative run — clean pipelines validate with
zero violations and zero extra events, while a rogue kernel the declared
pipeline never mentions is flagged at its commit (FK591) and again when
the read-back serves its version (FK592); under ``lint="strict"`` the
violation raises mid-run.
"""

import numpy as np
import pytest

from repro.analysis import HOST_PRODUCER
from repro.analysis.pipeline_sanitizer import (
    PipelineSanitizer,
    PipelineSanitizerError,
)
from repro.core.config import FluidiCLConfig
from repro.core.runtime import FluidiCLRuntime
from repro.hw.cost import WorkGroupCost
from repro.hw.machine import build_machine
from repro.kernels.dsl import Intent, KernelSpec, buffer_arg
from repro.obs.events import EventKind, Phase, TraceEvent
from repro.ocl.ndrange import NDRange
from repro.polybench.suite import make_app
from repro.workloads.pipeline import BufferDecl, KernelStage, PipelineApp


def _event(category, **attrs):
    return TraceEvent(ts=0.0, kind=EventKind.GENERIC, phase=Phase.INSTANT,
                      name=category, track="test", attrs=attrs,
                      category=category)


class TestUnitAttribution:
    def test_commit_by_predicted_kernel_is_clean(self):
        s = PipelineSanitizer({"a": {"k1"}})
        s(_event("kernel_begin", kernel="k1", kernel_id=7))
        s(_event("commit", kernel_id=7, buffers=["a"]))
        s(_event("buffer_read", buffer="a", version=7))
        assert s.violations == []
        assert s.checks == 2

    def test_commit_by_unpredicted_kernel_is_fk591(self):
        s = PipelineSanitizer({"a": {"k1"}})
        s(_event("kernel_begin", kernel="rogue", kernel_id=9))
        s(_event("commit", kernel_id=9, buffers=["a"]))
        assert [v.rule_id for v in s.violations] == ["FK591"]
        assert s.violations[0].producer == "rogue"
        assert s.violations[0].buffer == "a"

    def test_read_of_unattributed_version_is_fk592(self):
        s = PipelineSanitizer({"a": {"k1"}})
        s(_event("buffer_read", buffer="a", version=99))
        assert [v.rule_id for v in s.violations] == ["FK592"]
        assert s.violations[0].producer is None

    def test_host_write_attributes_to_host_producer(self):
        s = PipelineSanitizer({"a": {HOST_PRODUCER}})
        s(_event("buffer_write", buffer="a", version=3))
        s(_event("buffer_read", buffer="a", version=3))
        assert s.violations == []

    def test_host_write_not_predicted_is_fk592(self):
        s = PipelineSanitizer({"a": {"k1"}})
        s(_event("buffer_write", buffer="a", version=3))
        s(_event("buffer_read", buffer="a", version=3))
        assert [v.rule_id for v in s.violations] == ["FK592"]
        assert s.violations[0].producer == HOST_PRODUCER

    def test_undeclared_buffers_are_ignored(self):
        s = PipelineSanitizer({"a": {"k1"}})
        s(_event("commit", kernel_id=5, buffers=["helper"]))
        s(_event("buffer_read", buffer="helper", version=5))
        assert s.violations == []
        assert s.checks == 0

    def test_strict_raises_at_the_event(self):
        s = PipelineSanitizer({"a": {"k1"}}, strict=True)
        with pytest.raises(PipelineSanitizerError) as excinfo:
            s(_event("buffer_read", buffer="a", version=1))
        assert excinfo.value.violation.rule_id == "FK592"
        finding = excinfo.value.violation.as_finding()
        assert finding.rule_id == "FK592"
        assert finding.buffer == "a"


class TestCleanRuns:
    @pytest.mark.parametrize("name", ["scan", "2mm"])
    def test_shipped_pipeline_validates_clean(self, name, monkeypatch):
        captured = []
        orig = PipelineSanitizer.__init__

        def spy(self, *args, **kwargs):
            orig(self, *args, **kwargs)
            captured.append(self)

        monkeypatch.setattr(PipelineSanitizer, "__init__", spy)
        app = make_app(name, scale="test")
        machine = build_machine(trace=True)
        runtime = FluidiCLRuntime(machine,
                                  config=FluidiCLConfig(lint="warn"))
        app.execute(runtime, check=False)
        assert len(captured) == 1, "the wiring must attach one sanitizer"
        sanitizer = captured[0]
        assert sanitizer.checks > 0, "a traced run must validate something"
        assert sanitizer.violations == []
        # a clean run emits no lint events: traces stay byte-identical
        assert not [e for e in machine.tracer.events
                    if e.kind is EventKind.LINT]

    def test_sanitizer_disabled_by_config(self, monkeypatch):
        captured = []
        orig = PipelineSanitizer.__init__

        def spy(self, *args, **kwargs):
            orig(self, *args, **kwargs)
            captured.append(self)

        monkeypatch.setattr(PipelineSanitizer, "__init__", spy)
        app = make_app("scan", scale="test")
        machine = build_machine(trace=True)
        runtime = FluidiCLRuntime(
            machine,
            config=FluidiCLConfig(lint="warn", pipeline_sanitizer=False))
        app.execute(runtime, check=False)
        assert captured == []

    def test_untraced_run_skips_the_sanitizer(self, monkeypatch):
        captured = []
        orig = PipelineSanitizer.__init__

        def spy(self, *args, **kwargs):
            orig(self, *args, **kwargs)
            captured.append(self)

        monkeypatch.setattr(PipelineSanitizer, "__init__", spy)
        app = make_app("scan", scale="test")
        runtime = FluidiCLRuntime(build_machine(trace=False),
                                  config=FluidiCLConfig(lint="warn"))
        app.execute(runtime, check=False)
        assert captured == []


# -- a pipeline whose execution drifts from its declaration ------------------
N, LOCAL = 256, 16
_COST = WorkGroupCost(
    flops=LOCAL * 32.0,
    bytes_read=LOCAL * 4 * 64.0 * 32,
    bytes_written=LOCAL * 4 * 64.0 * 32,
    loop_iters=32,
    compute_efficiency={"cpu": 0.5, "gpu": 0.5},
    memory_efficiency={"cpu": 0.5, "gpu": 0.5},
)


def _scale_body(ctx):
    rows = ctx.rows()
    ctx["y"][rows] = 2.0 * ctx["x"][rows]


def _rogue_body(ctx):
    rows = ctx.rows()
    ctx["y"][rows] = 5.0 * ctx["x"][rows]


_ROGUE_SPEC = KernelSpec(
    name="rogue_scale",
    args=(buffer_arg("x"), buffer_arg("y", Intent.OUT)),
    body=_rogue_body, cost=_COST,
)


class RogueApp(PipelineApp):
    """Declares one scale kernel, then launches an undeclared second one."""

    name = "rogue-toy"

    def __init__(self, seed=5):
        super().__init__(seed)
        self.n = N

    def build_inputs(self, rng):
        return {"x": rng.standard_normal(self.n).astype(np.float32)}

    def reference(self, inputs):
        return {"y": 5.0 * inputs["x"]}

    def kernel_metas(self):
        return []

    def buffer_decls(self):
        return [
            BufferDecl("x", (self.n,), np.float32, init="x"),
            BufferDecl("y", (self.n,), np.float32, read="y"),
        ]

    def stages(self):
        return [KernelStage(
            spec=KernelSpec(name="wp_scale",
                            args=(buffer_arg("x"),
                                  buffer_arg("y", Intent.OUT)),
                            body=_scale_body, cost=_COST),
            ndrange=NDRange(self.n, LOCAL), binds={"x": "x", "y": "y"})]

    def _run_stages(self, runtime, buffers, decls_by_name, state, stages):
        super()._run_stages(runtime, buffers, decls_by_name, state, stages)
        # the drift: a launch the declared pipeline never mentions
        runtime.enqueue_nd_range_kernel(
            _ROGUE_SPEC, NDRange(self.n, LOCAL),
            {"x": buffers["x"], "y": buffers["y"]})


class TestDivergenceDetection:
    def test_warn_records_and_reports_the_divergence(self):
        app = RogueApp()
        machine = build_machine(trace=True)
        runtime = FluidiCLRuntime(machine,
                                  config=FluidiCLConfig(lint="warn"))
        result = app.execute(runtime, check=False)
        # the rogue kernel really ran — its result is what reads back
        np.testing.assert_allclose(result.outputs["y"],
                                   app.reference(app.fresh_inputs())["y"],
                                   rtol=1e-6)
        lint_events = [e for e in machine.tracer.events
                       if e.kind is EventKind.LINT]
        rules = {e.get("rule") for e in lint_events}
        assert "FK591" in rules, "the rogue commit must be flagged"
        assert "FK592" in rules, "the rogue read-back must be flagged"
        assert runtime.metrics.counter("lint_findings").value >= 2

    def test_strict_raises_at_the_rogue_commit(self):
        app = RogueApp()
        machine = build_machine(trace=True)
        runtime = FluidiCLRuntime(machine,
                                  config=FluidiCLConfig(lint="strict"))
        with pytest.raises(PipelineSanitizerError) as excinfo:
            app.execute(runtime, check=False)
        assert excinfo.value.violation.rule_id in ("FK591", "FK592")
        assert excinfo.value.violation.buffer == "y"
