"""Behavioral unit tests of the FK4xx/FK5xx pipeline rule passes.

The planted-defect fixtures prove each rule *fires*
(``test_pipeline_known_bad``); these tests pin the other half of every
rule's contract — the exemptions that keep the shipped suite (and any
correct pipeline) clean: self-reads and intervening readers for FK402,
scalar-bounded reads for FK403 (the BFS ``cand[:nfront]`` idiom),
read-then-write host stages for FK404, and matching tile geometry for
FK501/FK502.  Plus the ``predicted_writers`` export the runtime
sanitizer is built on.
"""

import numpy as np
import pytest

from repro.analysis import (
    HOST_PRODUCER,
    LintError,
    analyze_pipeline,
    predicted_writers,
)
from repro.hw.cost import WorkGroupCost
from repro.kernels.dsl import Intent, KernelSpec, buffer_arg
from repro.ocl.ndrange import NDRange
from repro.workloads.pipeline import (
    BufferDecl,
    HostStage,
    KernelStage,
    WhileStage,
    validate_pipeline,
)

N, LOCAL = 64, 8
_COST = WorkGroupCost(flops=1e6, bytes_read=1e4, bytes_written=1e4)
_ND = NDRange(N, LOCAL)


def _spec(name, args, body):
    return KernelSpec(name=name, args=args, body=body, cost=_COST)


# -- module-level kernel bodies (the facts extractor needs source) ----------
def _produce_body(ctx):
    rows = ctx.rows()
    ctx["t"][rows] = 2.0 * ctx["x"][rows]


def _inout_body(ctx):
    rows = ctx.rows()
    ctx["t"][rows] = ctx["t"][rows] + 1.0


def _consume_body(ctx):
    rows = ctx.rows()
    ctx["y"][rows] = ctx["t"][rows] + 1.0


def _overwrite_body(ctx):
    rows = ctx.rows()
    ctx["t"][rows] = 3.0 * ctx["x"][rows]


def _consume2_body(ctx):
    rows = ctx.rows()
    ctx["z"][rows] = ctx["t"][rows] - 1.0


def _loop_write_body(ctx):
    rows = ctx.rows()
    ctx["buf"][rows] = ctx["buf"][rows] * 0.5


def _bounded_read_body(ctx):
    rows = ctx.rows()
    k = int(ctx["count"][0])
    ctx["y"][rows] = ctx["y"][rows] + ctx["buf"][:k].sum()


def _tile2_write_body(ctx):
    rows, cols = ctx.rows(0), ctx.rows(1)
    ctx["t"][rows, cols] = 1.0


def _tile2_read_body(ctx):
    rows, cols = ctx.rows(0), ctx.rows(1)
    ctx["y"][rows, cols] = ctx["t"][rows, cols] * 2.0


def _decls(*names, init=(), read=()):
    out = []
    for name in names:
        out.append(BufferDecl(
            name, (N,), np.float32,
            init=name if name in init else None,
            read=name if name in read else None,
        ))
    return out


def _produce(): return KernelStage(
    spec=_spec("kp_produce",
               (buffer_arg("x"), buffer_arg("t", Intent.OUT)),
               _produce_body),
    ndrange=_ND, binds={"x": "x", "t": "t"})


def _consume(): return KernelStage(
    spec=_spec("kp_consume",
               (buffer_arg("t"), buffer_arg("y", Intent.OUT)),
               _consume_body),
    ndrange=_ND, binds={"t": "t", "y": "y"})


class TestCleanPipeline:
    def _pipeline(self):
        return (_decls("x", "t", "y", init=("x",), read=("y",)),
                [_produce(), _consume()])

    def test_no_findings(self):
        decls, stages = self._pipeline()
        report = analyze_pipeline(decls, stages, name="toy")
        assert report.findings == []
        assert report.fluidic_safe
        assert report.label == "pipeline:toy"

    def test_validate_pipeline_analyze_returns_report(self):
        decls, stages = self._pipeline()
        report = validate_pipeline(decls, stages, analyze=True, name="toy")
        assert report is not None and report.fluidic_safe
        # without analyze= the legacy contract (None) is preserved
        assert validate_pipeline(decls, stages) is None

    def test_validate_pipeline_analyze_raises_on_errors(self):
        decls, stages = self._pipeline()
        sneaky = KernelStage(
            spec=_spec("kp_sneaky",
                       (buffer_arg("x"), buffer_arg("t"),
                        buffer_arg("y", Intent.OUT)),
                       _overwrite_body),
            ndrange=_ND, binds={"x": "x", "t": "t", "y": "y"})
        with pytest.raises(LintError) as excinfo:
            validate_pipeline(decls, [stages[0], sneaky, stages[1]],
                              analyze=True, name="toy")
        assert "FK401" in str(excinfo.value)


class TestFk402Exemptions:
    def test_self_read_is_a_dependency_edge(self):
        # write -> inout-rewrite -> read: the INOUT stage reads what it
        # overwrites, so the writes are ordered and FK402 stays silent
        decls = _decls("x", "t", "y", init=("x",), read=("y",))
        inout = KernelStage(
            spec=_spec("kp_inout", (buffer_arg("t", Intent.INOUT),),
                       _inout_body),
            ndrange=_ND, binds={"t": "t"})
        report = analyze_pipeline(decls, [_produce(), inout, _consume()])
        assert report.findings == []

    def test_intervening_reader_orders_the_writes(self):
        decls = _decls("x", "t", "y", "z", init=("x",), read=("y", "z"))
        rewrite = KernelStage(
            spec=_spec("kp_rewrite",
                       (buffer_arg("x"), buffer_arg("t", Intent.OUT)),
                       _overwrite_body),
            ndrange=_ND, binds={"x": "x", "t": "t"})
        consume2 = KernelStage(
            spec=_spec("kp_consume2",
                       (buffer_arg("t"), buffer_arg("z", Intent.OUT)),
                       _consume2_body),
            ndrange=_ND, binds={"t": "t", "z": "z"})
        # produce -> consume (reads t) -> rewrite t -> consume2: the read
        # between the two writes of t is the ordering dependency edge
        report = analyze_pipeline(
            decls, [_produce(), _consume(), rewrite, consume2])
        assert "FK402" not in report.rule_ids()


class TestFk403Exemptions:
    def _loop(self, reader):
        decls = (_decls("x", "buf", "count", init=("x", "buf", "count"))
                 + _decls("y", read=("y",)))
        writer = KernelStage(
            spec=_spec("kp_shrink",
                       (buffer_arg("buf", Intent.INOUT),),
                       _loop_write_body),
            ndrange=lambda state: NDRange(state["n"], LOCAL),
            binds={"buf": "buf"})
        loop = WhileStage(
            name="shrink",
            cond=lambda state: state.setdefault("iters", 0) < 2,
            body=(writer, reader),
            max_iterations=4,
        )
        return decls, [loop]

    def test_scalar_bounded_read_does_not_fire(self):
        # the BFS idiom: the read is clipped by a count the host derives
        # from the same data-dependent size — classified OTHER, not FULL
        reader = KernelStage(
            spec=_spec("kp_bounded",
                       (buffer_arg("buf"), buffer_arg("count"),
                        buffer_arg("y", Intent.INOUT)),
                       _bounded_read_body),
            ndrange=_ND,
            binds={"buf": "buf", "count": "count", "y": "y"})
        decls, stages = self._loop(reader)
        report = analyze_pipeline(decls, stages)
        assert "FK403" not in report.rule_ids()

    def test_static_ndrange_writer_does_not_fire(self):
        decls = _decls("x", "t", "y", init=("x",), read=("y",))
        inout = KernelStage(
            spec=_spec("kp_inout", (buffer_arg("t", Intent.INOUT),),
                       _inout_body),
            ndrange=_ND, binds={"t": "t"})
        loop = WhileStage(
            name="steps",
            cond=lambda state: state.setdefault("iters", 0) < 2,
            body=(inout,),
            max_iterations=4,
        )
        report = analyze_pipeline(decls, [_produce(), loop, _consume()])
        assert "FK403" not in report.rule_ids()


class TestFk404Exemption:
    def test_host_stage_that_reads_first_is_fine(self):
        decls = _decls("x", "t", "y", init=("x",), read=("y",))
        folding = HostStage(
            name="hp_fold",
            fn=lambda host, state: host.write("t", host.read("t") * 2.0),
            reads=("t",), writes=("t",))
        report = analyze_pipeline(decls, [_produce(), folding, _consume()])
        assert "FK404" not in report.rule_ids()


class TestFk50xExemptions:
    def test_matching_tile_geometry_is_clean(self):
        nd2 = NDRange((16, 16), (4, 4))
        decls = [
            BufferDecl("t", (16, 16), np.float32),
            BufferDecl("y", (16, 16), np.float32, read="y"),
        ]
        producer = KernelStage(
            spec=_spec("kp_tile_w", (buffer_arg("t", Intent.OUT),),
                       _tile2_write_body),
            ndrange=nd2, binds={"t": "t"})
        consumer = KernelStage(
            spec=_spec("kp_tile_r",
                       (buffer_arg("t"), buffer_arg("y", Intent.OUT)),
                       _tile2_read_body),
            ndrange=nd2, binds={"t": "t", "y": "y"})
        report = analyze_pipeline(decls, [producer, consumer])
        assert report.findings == []


class TestFk410:
    def test_lambda_body_degrades_with_info(self):
        decls = _decls("x", "y", init=("x",), read=("y",))
        opaque = KernelStage(
            spec=_spec("kp_opaque",
                       (buffer_arg("x"), buffer_arg("y", Intent.OUT)),
                       lambda ctx: None),
            ndrange=_ND, binds={"x": "x", "y": "y"})
        report = analyze_pipeline(decls, [opaque])
        assert report.rule_ids() == ("FK410",)
        # INFO only: an opaque body degrades analysis, it does not gate
        assert report.fluidic_safe


class TestPredictedWriters:
    def test_kernel_host_and_init_writers(self):
        decls = _decls("x", "t", "y", init=("x",), read=("y",))
        folding = HostStage(
            name="hp_fold",
            fn=lambda host, state: host.write("t", host.read("t") * 2.0),
            reads=("t",), writes=("t",))
        writers = predicted_writers(decls, [_produce(), folding, _consume()])
        assert writers["x"] == {HOST_PRODUCER}
        assert writers["t"] == {"kp_produce", HOST_PRODUCER}
        assert writers["y"] == {"kp_consume"}

    def test_loop_body_writers_are_predicted(self):
        decls = _decls("x", "t", "y", init=("x",), read=("y",))
        inout = KernelStage(
            spec=_spec("kp_inout", (buffer_arg("t", Intent.INOUT),),
                       _inout_body),
            ndrange=_ND, binds={"t": "t"})
        loop = WhileStage(
            name="steps",
            cond=lambda state: state.setdefault("iters", 0) < 2,
            body=(inout,),
            max_iterations=4,
        )
        writers = predicted_writers(decls, [_produce(), loop, _consume()])
        assert writers["t"] == {"kp_produce", "kp_inout"}
