"""The rule engine (repro.analysis.analyzer) over synthetic kernels."""

import pytest

from repro.analysis import Severity, analyze_kernel
from repro.analysis.analyzer import LONG_LOOP_ITERS, analyze_variant
from repro.hw.cost import WorkGroupCost
from repro.kernels.dsl import Intent, KernelSpec, buffer_arg, scalar_arg
from repro.kernels.transforms import gpu_fluidic_variant, plain_variant

COST = WorkGroupCost(flops=1e5, bytes_read=1e4, bytes_written=1e4)
LONG_COST = WorkGroupCost(flops=1e5, bytes_read=1e4, bytes_written=1e4,
                          loop_iters=LONG_LOOP_ITERS)


def kernel(body, *args, cost=COST, name="k"):
    return KernelSpec(name=name, args=tuple(args), body=body, cost=cost)


def _clean_body(ctx):
    rows = ctx.rows()
    ctx["y"][rows] = ctx["x"][rows] * 2.0


class TestIntentRules:
    def test_clean_kernel_has_no_findings(self):
        report = analyze_kernel(kernel(
            _clean_body, buffer_arg("x"), buffer_arg("y", Intent.OUT)))
        assert report.findings == []
        assert report.fluidic_safe

    def test_fk101_under_declared_write(self):
        report = analyze_kernel(kernel(
            _clean_body, buffer_arg("x"), buffer_arg("y")))
        assert "FK101" in report.rule_ids()
        assert not report.fluidic_safe
        finding = report.findings[0]
        assert finding.arg == "y"
        assert finding.location is not None
        assert "Intent.OUT" in finding.hint

    def test_fk102_out_declared_buffer_read(self):
        def body(ctx):
            rows = ctx.rows()
            ctx["y"][rows] = ctx["y"][rows] + ctx["x"][rows]

        report = analyze_kernel(kernel(
            body, buffer_arg("x"), buffer_arg("y", Intent.OUT)))
        assert "FK102" in report.rule_ids()
        assert report.fluidic_safe  # a warning, not an error

    def test_fk103_unknown_name_suggests_closest(self):
        def body(ctx):
            rows = ctx.rows()
            ctx["y"][rows] = ctx["xs"][rows]

        report = analyze_kernel(kernel(
            body, buffer_arg("x"), buffer_arg("y", Intent.OUT)))
        fk103 = [f for f in report.findings if f.rule_id == "FK103"]
        assert fk103 and "'x'" in fk103[0].hint

    def test_fk104_scalar_written(self):
        def body(ctx):
            ctx["y"][ctx.rows()] = ctx["x"][ctx.rows()]
            ctx["n"] = 3

        report = analyze_kernel(kernel(
            body, buffer_arg("x"), buffer_arg("y", Intent.OUT),
            scalar_arg("n")))
        assert "FK104" in report.rule_ids()
        assert not report.fluidic_safe

    def test_fk110_over_declared_write(self):
        def body(ctx):
            ctx["y"][ctx.rows()] = ctx["x"][ctx.rows()] + ctx["z"][ctx.rows()]

        report = analyze_kernel(kernel(
            body, buffer_arg("x"), buffer_arg("y", Intent.OUT),
            buffer_arg("z", Intent.OUT)))
        ids = report.rule_ids()
        assert "FK110" in ids
        assert report.fluidic_safe

    def test_fk111_inout_never_read(self):
        report = analyze_kernel(kernel(
            _clean_body, buffer_arg("x"), buffer_arg("y", Intent.INOUT)))
        assert "FK111" in report.rule_ids()

    def test_fk112_unused_argument(self):
        report = analyze_kernel(kernel(
            _clean_body, buffer_arg("x"), buffer_arg("y", Intent.OUT),
            buffer_arg("unused"), scalar_arg("beta")))
        unused = {f.arg for f in report.findings if f.rule_id == "FK112"}
        assert unused == {"unused", "beta"}


class TestRaceRules:
    def test_fk201_untiled_write(self):
        def body(ctx):
            rows = ctx.rows()
            ctx["y"][:] = ctx["x"][rows].sum()

        report = analyze_kernel(kernel(
            body, buffer_arg("x"), buffer_arg("y", Intent.OUT)))
        assert "FK201" in report.rule_ids()
        assert not report.fluidic_safe

    def test_fk201_write_missing_partitioned_dim(self):
        def body(ctx):
            rows = ctx.rows()
            cols = ctx.cols()  # partitions dim 1 too
            ctx["y"][rows] = ctx["x"][rows, cols].sum(axis=1)

        report = analyze_kernel(kernel(
            body, buffer_arg("x"), buffer_arg("y", Intent.OUT)))
        assert "FK201" in report.rule_ids()

    def test_fk201_no_tile_derivation_at_all(self):
        def body(ctx):
            ctx["y"][0] = 1.0

        report = analyze_kernel(kernel(body, buffer_arg("y", Intent.OUT)))
        assert "FK201" in report.rule_ids()

    def test_fk202_whole_variable_read_of_written_buffer(self):
        def body(ctx):
            rows = ctx.rows()
            ctx["y"][rows] = ctx["x"][rows] + ctx["y"].mean()

        report = analyze_kernel(kernel(
            body, buffer_arg("x"), buffer_arg("y", Intent.INOUT)))
        assert "FK202" in report.rule_ids()
        assert not report.fluidic_safe

    def test_fk202_read_outside_write_tile_mapping(self):
        def body(ctx):
            rows = ctx.rows()
            ctx["y"][rows] = ctx["x"][rows] + ctx["y"][:].sum()

        report = analyze_kernel(kernel(
            body, buffer_arg("x"), buffer_arg("y", Intent.INOUT)))
        assert "FK202" in report.rule_ids()

    def test_inout_read_of_own_tile_is_safe(self):
        def body(ctx):
            rows = ctx.rows()
            ctx["y"][rows] = ctx["y"][rows] + ctx["x"][rows]

        report = analyze_kernel(kernel(
            body, buffer_arg("x"), buffer_arg("y", Intent.INOUT)))
        assert report.findings == []

    def test_full_axis_on_unpartitioned_dim_is_safe(self):
        # 1-D partition writing 2-D rows: data[rows, :] is the group's tile
        def body(ctx):
            rows = ctx.rows()
            ctx["data"][rows, :] = ctx["data"][rows, :] * 2.0

        report = analyze_kernel(kernel(
            body, buffer_arg("data", Intent.INOUT)))
        assert report.findings == []

    def test_fk203_unresolved_key(self):
        def body(ctx):
            name = str(len("xy"))
            ctx[name][ctx.rows()] = 0.0

        report = analyze_kernel(KernelSpec(
            "k", (buffer_arg("x", Intent.OUT),), body, COST))
        assert "FK203" in report.rule_ids()

    def test_fk210_unanalyzable_body_is_info_only(self):
        report = analyze_kernel(KernelSpec(
            "k", (buffer_arg("x"), buffer_arg("y", Intent.OUT)),
            lambda ctx: None, COST))
        assert report.rule_ids() == ("FK210",)
        assert report.findings[0].severity is Severity.INFO
        assert report.fluidic_safe
        assert not report.worth_reporting(Severity.WARNING)


class TestAbortRules:
    def test_fk301_long_loop_without_inloop_aborts(self):
        spec = kernel(_clean_body, buffer_arg("x"),
                      buffer_arg("y", Intent.OUT), cost=LONG_COST)
        report = analyze_kernel(spec, abort_in_loops=False)
        assert "FK301" in report.rule_ids()
        assert analyze_kernel(spec, abort_in_loops=True).findings == []

    def test_fk302_aborts_without_reunroll(self):
        spec = kernel(_clean_body, buffer_arg("x"),
                      buffer_arg("y", Intent.OUT), cost=LONG_COST)
        report = analyze_kernel(spec, abort_in_loops=True, loop_unroll=False)
        assert "FK302" in report.rule_ids()

    def test_short_loop_needs_no_abort_checks(self):
        report = analyze_kernel(
            kernel(_clean_body, buffer_arg("x"), buffer_arg("y", Intent.OUT)),
            abort_in_loops=False)
        assert report.findings == []

    def test_fk303_explicit_loop_with_unit_cost(self):
        def body(ctx):
            rows = ctx.rows()
            acc = ctx["x"][rows] * 0.0
            for _ in range(8):
                acc = acc + ctx["x"][rows]
            ctx["y"][rows] = acc

        report = analyze_kernel(kernel(
            body, buffer_arg("x"), buffer_arg("y", Intent.OUT)))
        assert "FK303" in report.rule_ids()

    def test_analyze_variant_uses_variant_flags(self):
        spec = kernel(_clean_body, buffer_arg("x"),
                      buffer_arg("y", Intent.OUT), cost=LONG_COST)
        fluidic = gpu_fluidic_variant(spec)
        assert analyze_variant(fluidic).findings == []
        plain = plain_variant(spec)
        report = analyze_variant(plain)
        assert "FK301" in report.rule_ids()


class TestReportShape:
    def test_version_label(self):
        spec = kernel(_clean_body, buffer_arg("x"),
                      buffer_arg("y", Intent.OUT))
        tuned = spec.with_version("tuned", _clean_body)
        assert analyze_kernel(tuned).label == "k@tuned"
        assert analyze_kernel(spec).label == "k"

    def test_findings_render_with_rule_and_location(self):
        report = analyze_kernel(kernel(
            _clean_body, buffer_arg("x"), buffer_arg("y")))
        text = report.render()
        assert "FK101" in text and "NOT fluidic-safe" in text
        assert "test_analyzer.py" in text

    def test_reports_are_cached(self):
        spec = kernel(_clean_body, buffer_arg("x"),
                      buffer_arg("y", Intent.OUT))
        assert analyze_kernel(spec) is analyze_kernel(spec)

    def test_unknown_rule_id_raises(self):
        from repro.analysis import rule
        with pytest.raises(KeyError):
            rule("FK999")
