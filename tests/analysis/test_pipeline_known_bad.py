"""Every planted pipeline defect fires exactly its expected rule.

The pipeline-level twin of ``test_known_bad``: each fixture in
:mod:`repro.analysis.known_bad_pipelines` is structurally valid (it
passes ``validate_pipeline``) and carries exactly one planted FK4xx/FK5xx
defect — the analyzer must report that rule and nothing else, so the
fixtures double as a stray-findings regression net.
"""

import pytest

from repro.analysis import (
    KNOWN_BAD_PIPELINES,
    analyze_pipeline,
    known_bad_pipeline,
)
from repro.workloads.pipeline import validate_pipeline

CASE_IDS = [case.name for case in KNOWN_BAD_PIPELINES]


@pytest.mark.parametrize("case", KNOWN_BAD_PIPELINES, ids=CASE_IDS)
class TestEachCase:
    def test_passes_structural_validation(self, case):
        decls, stages = case.pipeline()
        validate_pipeline(decls, stages)  # must not raise

    def test_fires_expected_rule(self, case):
        decls, stages = case.pipeline()
        report = analyze_pipeline(decls, stages, name=case.name)
        assert case.expected_rule in report.rule_ids(), (
            f"{case.name}: expected {case.expected_rule}, "
            f"got {report.rule_ids()}"
        )

    def test_no_stray_findings(self, case):
        # exactly the planted defect: a second rule firing means either a
        # fixture regression or an over-eager analyzer
        decls, stages = case.pipeline()
        report = analyze_pipeline(decls, stages, name=case.name)
        assert set(report.rule_ids()) == {case.expected_rule}

    def test_findings_carry_attribution(self, case):
        decls, stages = case.pipeline()
        report = analyze_pipeline(decls, stages, name=case.name)
        for finding in report.findings:
            assert finding.stage, f"{case.name}: finding without a stage"
            payload = finding.as_dict()
            assert payload["severity"] in ("error", "warning", "info")
            assert payload["hint"], f"{case.name}: finding without a hint"


class TestCatalog:
    def test_covers_both_rule_families(self):
        expected = {case.expected_rule for case in KNOWN_BAD_PIPELINES}
        assert {"FK401", "FK402", "FK403", "FK404", "FK405"} <= expected
        assert {"FK501", "FK502"} <= expected

    def test_at_least_five_fixtures(self):
        assert len(KNOWN_BAD_PIPELINES) >= 5

    def test_lookup_by_name(self):
        case = known_bad_pipeline("unordered-waw")
        assert case.expected_rule == "FK402"
        with pytest.raises(KeyError):
            known_bad_pipeline("no-such-pipeline")
