"""AST fact extraction over kernel bodies (repro.analysis.facts)."""

import numpy as np

from repro.analysis.facts import AxisKind, extract_facts


def _only_write(facts, buffer):
    writes = facts.writes(buffer)
    assert len(writes) == 1, writes
    return writes[0]


class TestTileClassification:
    def test_rows_slice_is_tile_dim0(self):
        def body(ctx):
            rows = ctx.rows()
            ctx["y"][rows] = ctx["x"][rows] * 2.0

        facts = extract_facts(body)
        assert facts.analyzable
        assert facts.tile_dims == {0}
        write = _only_write(facts, "y")
        assert write.axes[0].kind is AxisKind.TILE
        assert write.axes[0].dim == 0

    def test_cols_slice_is_tile_dim1(self):
        def body(ctx):
            cols = ctx.cols()
            ctx["y"][:, cols] = ctx["x"][:, cols]

        facts = extract_facts(body)
        assert facts.tile_dims == {1}
        write = _only_write(facts, "y")
        assert write.axes[0].kind is AxisKind.FULL
        assert write.axes[1].kind is AxisKind.TILE
        assert write.axes[1].dim == 1

    def test_item_range_unpack_bounds_slice(self):
        def body(ctx):
            r0, r1 = ctx.item_range(0)
            c0, c1 = ctx.item_range(1)
            ctx["C"][r0:r1, c0:c1] = ctx["A"][r0:r1, :] @ ctx["B"][:, c0:c1]

        facts = extract_facts(body)
        assert facts.tile_dims == {0, 1}
        write = _only_write(facts, "C")
        assert [a.kind for a in write.axes] == [AxisKind.TILE, AxisKind.TILE]
        assert [a.dim for a in write.axes] == [0, 1]
        a_read = facts.reads("A")[0]
        assert a_read.axes[0].kind is AxisKind.TILE
        assert a_read.axes[1].kind is AxisKind.FULL

    def test_rebuilt_slice_call_is_tile(self):
        def body(ctx):
            r = ctx.item_range(0)
            ctx["y"][slice(r[0], r[1])] = 0.0

        facts = extract_facts(body)
        write = _only_write(facts, "y")
        assert write.axes[0].kind is AxisKind.TILE

    def test_computed_index_is_other(self):
        def body(ctx):
            lo, hi = ctx.item_range(0)
            ctx["y"][lo + 1:hi + 1] = 0.0

        facts = extract_facts(body)
        write = _only_write(facts, "y")
        assert write.axes[0].kind is AxisKind.OTHER

    def test_group_id_scalar_is_tile(self):
        def body(ctx):
            g = ctx.group_id[0]
            ctx["y"][g] = 1.0

        facts = extract_facts(body)
        assert facts.tile_dims == {0}
        write = _only_write(facts, "y")
        assert write.axes[0].kind is AxisKind.TILE


class TestAccessModes:
    def test_augassign_reads_then_writes(self):
        def body(ctx):
            rows = ctx.rows()
            ctx["y"][rows] += ctx["x"][rows]

        facts = extract_facts(body)
        assert len(facts.reads("y")) == 1
        assert len(facts.writes("y")) == 1

    def test_whole_variable_read(self):
        def body(ctx):
            rows = ctx.rows()
            ctx["y"][rows] = ctx["x"].mean()

        facts = extract_facts(body)
        reads = facts.reads("x")
        assert len(reads) == 1
        assert not reads[0].subscripted

    def test_alias_assignment_is_not_a_read(self):
        def body(ctx):
            src = ctx["src"]
            rows = ctx.rows()
            ctx["dst"][rows] = src[rows]

        facts = extract_facts(body)
        # the alias binding itself contributes nothing; the subscripted
        # use through the alias is the only read
        reads = facts.reads("src")
        assert len(reads) == 1
        assert reads[0].subscripted

    def test_scalar_whole_variable_read(self):
        def body(ctx):
            rows = ctx.rows()
            ctx["y"][rows] = ctx["alpha"] * ctx["x"][rows]

        facts = extract_facts(body)
        assert "alpha" in facts.read_names
        assert "alpha" not in facts.written_names


class TestKeyResolution:
    def test_closure_key_resolves(self):
        def make(out):
            def body(ctx):
                rows = ctx.rows()
                ctx[out][rows] = ctx["x"][rows]
            return body

        facts = extract_facts(make("result"))
        assert facts.written_names == {"result"}
        assert not facts.unresolved_keys

    def test_module_global_key_resolves(self):
        # np is a module global of this test module: not a string, so the
        # subscript ctx[np] is unresolvable, not silently mis-resolved
        def body(ctx):
            ctx[np][0] = 1.0

        facts = extract_facts(body)
        assert facts.unresolved_keys

    def test_dynamic_key_is_unresolved(self):
        def body(ctx):
            name = "ab"[0:1] + "x"
            ctx[name][ctx.rows()] = 0.0

        facts = extract_facts(body)
        assert facts.unresolved_keys


class TestAnalyzability:
    def test_lambda_is_unanalyzable(self):
        facts = extract_facts(lambda ctx: None)
        assert not facts.analyzable
        assert "lambda" in facts.reason

    def test_loops_are_recorded(self):
        def body(ctx):
            rows = ctx.rows()
            acc = ctx["x"][rows] * 0.0
            for _ in range(4):
                acc = acc + ctx["x"][rows]
            ctx["y"][rows] = acc

        facts = extract_facts(body)
        assert [loop.kind for loop in facts.loops] == ["for"]

    def test_locations_point_at_this_file(self):
        def body(ctx):
            ctx["y"][ctx.rows()] = 0.0

        facts = extract_facts(body)
        assert facts.source_file.endswith("test_facts.py")
        write = facts.writes("y")[0]
        with open(facts.source_file, "r", encoding="utf-8") as fh:
            line = fh.readlines()[write.line - 1]
        assert 'ctx["y"]' in line
