"""End-to-end: an undeclared inter-stage write corrupts a cooperative
three-device run, and the strict pipeline gate refuses to launch it.

The pipeline-level twin of ``test_gate.TestEndToEndCorruption``.  The
planted defect is FK401 made real: stage ``wp_sneaky`` accumulates into
``tmp`` in its body while binding it with Intent.IN, so the write never
enters ``out_args`` — FluidiCL neither merges the partitions nor bumps
the version, leaving every device's ``tmp`` copy holding its *own*
partition of the accumulation over the stale produce values.  The
consumer reads ``tmp`` reversed, so each device observes rows another
device computed: on a cpu+2gpu machine the read-back provably diverges
from the serial semantics, by construction and not by luck.  Declaring
the same binding Intent.INOUT is the one-line fix: the accumulation is
merged like any other output and every mode runs clean.

``lint="strict"`` refuses the whole pipeline before a single buffer is
created; ``lint="warn"`` launches it but emits the FK401 finding as a
typed ``lint_finding`` event.
"""

import numpy as np
import pytest

from repro.analysis import LintError
from repro.core.config import FluidiCLConfig
from repro.core.runtime import FluidiCLRuntime
from repro.hw.cost import WorkGroupCost
from repro.hw.machine import build_machine
from repro.kernels.dsl import Intent, KernelSpec, buffer_arg
from repro.obs.events import EventKind
from repro.ocl.ndrange import NDRange

# repro.polybench must finish loading before repro.workloads.pipeline is
# imported fresh (import cycle; see repro.analysis.pipeline_facts)
import repro.polybench  # noqa: E402,F401
from repro.workloads.pipeline import BufferDecl, KernelStage, PipelineApp

N, LOCAL = 4096, 16

_COST = WorkGroupCost(
    flops=LOCAL * 32.0,
    bytes_read=LOCAL * 4 * 64.0 * 32,
    bytes_written=LOCAL * 4 * 64.0 * 32,
    loop_iters=32,
    compute_efficiency={"cpu": 0.5, "gpu": 0.5},
    memory_efficiency={"cpu": 0.5, "gpu": 0.5},
)


def _produce_body(ctx):
    rows = ctx.rows()
    ctx["tmp"][rows] = 2.0 * ctx["x"][rows]


def _sneaky_body(ctx):
    rows = ctx.rows()
    ctx["tmp"][rows] += ctx["x"][rows]  # undeclared when bound Intent.IN
    ctx["z"][rows] = ctx["x"][rows]


def _consume_body(ctx):
    rows = ctx.rows()
    rev = ctx["tmp"][::-1]
    ctx["y"][rows] = rev[rows] + 1.0


class WawPipelineApp(PipelineApp):
    """produce -> sneaky (undeclared tmp rewrite) -> reversed consume."""

    name = "waw-toy"

    def __init__(self, tmp_intent=Intent.IN, seed=3):
        super().__init__(seed)
        self.n = N
        self.tmp_intent = tmp_intent

    def build_inputs(self, rng):
        return {"x": rng.standard_normal(self.n).astype(np.float32)}

    def reference(self, inputs):
        # serial semantics: the sneaky in-place write wins everywhere
        return {"y": 3.0 * inputs["x"][::-1] + 1.0}

    def kernel_metas(self):
        return []

    def buffer_decls(self):
        n = self.n
        return [
            BufferDecl("x", (n,), np.float32, init="x"),
            BufferDecl("tmp", (n,), np.float32),
            BufferDecl("z", (n,), np.float32),
            BufferDecl("y", (n,), np.float32, read="y"),
        ]

    def stages(self):
        nd = NDRange(self.n, LOCAL)
        return [
            KernelStage(
                spec=KernelSpec(
                    name="wp_produce",
                    args=(buffer_arg("x"), buffer_arg("tmp", Intent.OUT)),
                    body=_produce_body, cost=_COST),
                ndrange=nd, binds={"x": "x", "tmp": "tmp"}),
            KernelStage(
                spec=KernelSpec(
                    name="wp_sneaky",
                    args=(buffer_arg("x"),
                          buffer_arg("tmp", self.tmp_intent),
                          buffer_arg("z", Intent.OUT)),
                    body=_sneaky_body, cost=_COST),
                ndrange=nd, binds={"x": "x", "tmp": "tmp", "z": "z"}),
            KernelStage(
                spec=KernelSpec(
                    name="wp_consume",
                    args=(buffer_arg("tmp"), buffer_arg("y", Intent.OUT)),
                    body=_consume_body, cost=_COST),
                ndrange=nd, binds={"tmp": "tmp", "y": "y"}),
        ]


def _run(app, lint, trace=False):
    machine = build_machine(preset="cpu+2gpu", trace=trace)
    runtime = FluidiCLRuntime(machine, config=FluidiCLConfig(lint=lint))
    inputs = app.fresh_inputs()
    result = app.execute(runtime, inputs=inputs, check=False)
    expected = app.reference(inputs)["y"]
    return runtime, machine, result.outputs["y"], expected


class TestStaticVerdict:
    def test_defective_pipeline_reports_fk401(self):
        report = WawPipelineApp().analyze()
        assert "FK401" in report.rule_ids()
        assert not report.fluidic_safe

    def test_fixed_pipeline_is_clean(self):
        report = WawPipelineApp(tmp_intent=Intent.INOUT).analyze()
        assert report.findings == []


class TestEndToEndCorruption:
    def test_declared_inout_is_correct_cooperatively(self):
        # control: same pipeline with the write declared — the merge runs
        # and the cooperative three-device result matches serial semantics
        app = WawPipelineApp(tmp_intent=Intent.INOUT)
        _, _, y, expected = _run(app, lint="off")
        np.testing.assert_allclose(y, expected, rtol=1e-6)

    def test_undeclared_write_corrupts_cooperative_result(self):
        app = WawPipelineApp()
        _, _, y, expected = _run(app, lint="off")
        assert not np.allclose(y, expected, rtol=1e-6), (
            "the undeclared inter-stage write should corrupt the "
            "cooperative result"
        )

    def test_strict_gate_prevents_the_corruption(self):
        app = WawPipelineApp()
        machine = build_machine(preset="cpu+2gpu", trace=True)
        runtime = FluidiCLRuntime(machine,
                                  config=FluidiCLConfig(lint="strict"))
        with pytest.raises(LintError) as excinfo:
            app.execute(runtime, check=False)
        assert "FK401" in str(excinfo.value)
        # refused before anything launched: no kernel records, no kernel
        # events, not even the pipeline's buffers
        assert runtime.records == []
        assert not [e for e in machine.tracer.events
                    if e.kind is EventKind.KERNEL]

    def test_strict_passes_the_fixed_pipeline(self):
        app = WawPipelineApp(tmp_intent=Intent.INOUT)
        _, _, y, expected = _run(app, lint="strict")
        np.testing.assert_allclose(y, expected, rtol=1e-6)


class TestWarnGate:
    def test_warn_emits_finding_and_launches(self):
        app = WawPipelineApp()
        runtime, machine, y, expected = _run(app, lint="warn", trace=True)
        lint_events = [e for e in machine.tracer.events
                       if e.kind is EventKind.LINT]
        pipeline_events = [e for e in lint_events
                           if e.get("version") == "pipeline"]
        assert pipeline_events, "warn mode must surface the FK401 finding"
        event = pipeline_events[0]
        assert event["rule"] == "FK401"
        assert event["severity"] == "error"
        assert event["buffer"] == "tmp"
        # it launched anyway — and produced the corruption it warned about
        assert len(runtime.records) == 3
        assert not np.allclose(y, expected, rtol=1e-6)

    def test_warn_is_silent_on_the_fixed_pipeline(self):
        app = WawPipelineApp(tmp_intent=Intent.INOUT)
        _, machine, _, _ = _run(app, lint="warn", trace=True)
        assert not [e for e in machine.tracer.events
                    if e.kind is EventKind.LINT]
