"""Unit tests for the repro.bench subsystem (measure / snapshot / gate)."""

import json

import pytest

from repro.bench.measure import Measurement, measure
from repro.bench.snapshot import (
    SCHEMA_VERSION,
    BenchResult,
    BenchSnapshot,
    compare_snapshots,
    find_snapshots,
    load_snapshot,
    next_snapshot_path,
)


def result(case_id="micro.x", throughput=100.0, simulated=None, **over):
    fields = dict(
        id=case_id, kind="micro", unit="ops/s", throughput=throughput,
        wall_seconds=1.0 / throughput, wall_mean_seconds=1.0 / throughput,
        spread=0.0, repeats=3, simulated_seconds=simulated,
    )
    fields.update(over)
    return BenchResult(**fields)


def snapshot(*results_):
    return BenchSnapshot(results=list(results_), created_at="t", host={},
                         config={})


class TestMeasure:
    def test_warmup_runs_are_untimed(self):
        calls = []
        timing = measure(lambda: calls.append(1), repeats=2, warmup=3)
        assert len(calls) == 5
        assert len(timing.runs) == 2

    def test_last_result_kept(self):
        timing = measure(lambda: {"work": 7}, repeats=2, warmup=0)
        assert timing.last_result == {"work": 7}

    def test_best_is_minimum(self):
        m = Measurement(runs=[0.3, 0.1, 0.2])
        assert m.best == 0.1
        assert m.mean == pytest.approx(0.2)
        assert m.spread == pytest.approx(2.0)

    def test_budget_stops_early(self):
        import time

        def slowish():
            time.sleep(0.02)

        timing = measure(slowish, repeats=50, warmup=0,
                         budget_seconds=0.05)
        assert 1 <= len(timing.runs) < 50

    def test_validation(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            measure(lambda: None, warmup=-1)


class TestSnapshotPersistence:
    def test_round_trip(self, tmp_path):
        snap = snapshot(result(simulated=1.5, meta={"n": 3}))
        path = str(tmp_path / "BENCH_1.json")
        snap.dump(path)
        loaded = load_snapshot(path)
        assert loaded.schema_version == SCHEMA_VERSION
        assert loaded.result("micro.x").simulated_seconds == 1.5
        assert loaded.result("micro.x").meta == {"n": 3}

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "BENCH_1.json"
        path.write_text(json.dumps({"schema_version": 999, "results": []}))
        with pytest.raises(ValueError, match="schema"):
            load_snapshot(str(path))

    def test_find_and_next_are_ordered_and_fresh(self, tmp_path):
        for n in (2, 10, 1):
            (tmp_path / f"BENCH_{n}.json").write_text("{}")
        (tmp_path / "BENCH_x.json").write_text("{}")  # ignored: not numbered
        found = find_snapshots(str(tmp_path))
        assert [n for n, _ in found] == [1, 2, 10]
        assert next_snapshot_path(str(tmp_path)).endswith("BENCH_11.json")

    def test_next_in_empty_dir_is_one(self, tmp_path):
        assert next_snapshot_path(str(tmp_path)).endswith("BENCH_1.json")


class TestComparisonGate:
    def test_within_threshold_ok(self):
        cmp_ = compare_snapshots(snapshot(result(throughput=80.0)),
                                 snapshot(result(throughput=100.0)),
                                 threshold=1.5)
        assert cmp_.ok
        assert not cmp_.regressions

    def test_regression_beyond_threshold_flagged(self):
        cmp_ = compare_snapshots(snapshot(result(throughput=50.0)),
                                 snapshot(result(throughput=100.0)),
                                 threshold=1.5)
        assert not cmp_.ok
        assert [c.id for c in cmp_.regressions] == ["micro.x"]
        assert cmp_.cases[0].ratio == pytest.approx(0.5)

    def test_improvement_reported(self):
        cmp_ = compare_snapshots(snapshot(result(throughput=150.0)),
                                 snapshot(result(throughput=100.0)),
                                 threshold=1.5)
        assert cmp_.ok
        assert cmp_.best_improvement.ratio == pytest.approx(1.5)

    def test_simulated_drift_fails_even_when_faster(self):
        cmp_ = compare_snapshots(
            snapshot(result(throughput=500.0, simulated=1.0001)),
            snapshot(result(throughput=100.0, simulated=1.0)),
            threshold=1.5,
        )
        assert not cmp_.ok
        assert [c.id for c in cmp_.drifted] == ["micro.x"]

    def test_simulated_float_noise_tolerated_on_residue_baselines(self):
        # a residue-carrying baseline (cost-model output, not on the
        # microsecond grid) tolerates sub-rtol float noise
        base = 1.0000000000004157
        cmp_ = compare_snapshots(
            snapshot(result(simulated=base + 1e-12)),
            snapshot(result(simulated=base)),
            threshold=1.5,
        )
        assert cmp_.ok

    def test_aligned_baseline_requires_exact_equality(self):
        # 10000.000001 is within 1e-9 relative of 10000.0, but both are
        # exact microsecond instants: the tick clock renders those
        # bit-exactly, so any difference is real drift
        cmp_ = compare_snapshots(
            snapshot(result(simulated=10000.000001)),
            snapshot(result(simulated=10000.0)),
            threshold=1.5,
        )
        assert not cmp_.ok
        assert [c.id for c in cmp_.drifted] == ["micro.x"]

    def test_aligned_baseline_flags_reintroduced_residue(self):
        # the historical condition_wait drift: 0.0199999... vs an exact
        # 0.02 baseline passes rtol but must flag now
        cmp_ = compare_snapshots(
            snapshot(result(simulated=0.019999999999999348)),
            snapshot(result(simulated=0.02)),
            threshold=1.5,
        )
        assert not cmp_.ok
        assert [c.id for c in cmp_.drifted] == ["micro.x"]

    def test_aligned_baseline_exact_match_passes(self):
        cmp_ = compare_snapshots(
            snapshot(result(simulated=0.02)),
            snapshot(result(simulated=0.02)),
            threshold=1.5,
        )
        assert cmp_.ok

    def test_simulated_check_can_be_disabled(self):
        cmp_ = compare_snapshots(
            snapshot(result(simulated=2.0)),
            snapshot(result(simulated=1.0)),
            threshold=1.5, check_simulated=False,
        )
        assert cmp_.ok

    def test_unmatched_cases_are_informational(self):
        cmp_ = compare_snapshots(
            snapshot(result("micro.new")),
            snapshot(result("micro.gone")),
            threshold=1.5,
        )
        assert cmp_.ok
        assert sorted(cmp_.unmatched) == ["micro.gone", "micro.new"]

    def test_threshold_must_exceed_one(self):
        with pytest.raises(ValueError):
            compare_snapshots(snapshot(), snapshot(), threshold=1.0)


class TestBenchCli:
    def test_smoke_micro_run_persists_and_gates(self, tmp_path, capsys):
        from repro.harness.bench_cli import bench_main

        code = bench_main([
            "--smoke", "--micro-only", "--repeats", "1", "--warmup", "0",
            "--baseline", "none", "--dir", str(tmp_path),
        ])
        assert code == 0
        snap_path = tmp_path / "BENCH_1.json"
        assert snap_path.exists()
        snap = load_snapshot(str(snap_path))
        assert snap.schema_version == SCHEMA_VERSION
        assert {r.kind for r in snap.results} == {"micro"}
        # smoke cases carry a distinct id so they never gate against a
        # full-size baseline (different n, different simulated seconds)
        assert "micro.event_churn.smoke" in {r.id for r in snap.results}

        # second run auto-gates against BENCH_1 and writes BENCH_2
        code = bench_main([
            "--smoke", "--micro-only", "--repeats", "1", "--warmup", "0",
            "--threshold", "1000", "--dir", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "BENCH_2.json").exists()
        out = capsys.readouterr().out
        assert "baseline" in out

    def test_regression_exits_nonzero(self, tmp_path):
        from repro.harness.bench_cli import bench_main

        inflated = snapshot(
            result("micro.event_churn.smoke", throughput=1e15)
        )
        baseline_path = tmp_path / "BENCH_5.json"
        inflated.dump(str(baseline_path))
        code = bench_main([
            "--smoke", "--micro-only", "--repeats", "1", "--warmup", "0",
            "--dir", str(tmp_path), "--no-persist",
            "--baseline", str(baseline_path), "--threshold", "1.01",
        ])
        assert code == 1

    def test_mutually_exclusive_selectors_rejected(self):
        from repro.harness.bench_cli import bench_main

        with pytest.raises(SystemExit):
            bench_main(["--micro-only", "--apps-only"])
