"""Simulated-timestamp exactness across the micro matrix (CI gate).

The integer-tick clock makes two promises, and this module is the
regression surface for both (CI runs it as the timestamp-exactness
check):

1. microsecond-aligned workloads record *exact* microsecond floats —
   summing 20000 one-microsecond delays yields ``0.02``, not the
   ``0.019999999999999348`` the float accumulator produced;
2. residue-carrying workloads (hardware cost models emit arbitrary
   float durations) stay bit-identical run to run: the error of each
   conversion is bounded per event and never accumulates, so repeating
   a case reproduces the identical simulated clock.
"""

import pytest

from repro.bench import micro
from repro.bench.micro import MICRO_BENCHMARKS
from repro.sim.timebase import from_ticks, from_us, to_ticks, to_us

#: cases whose simulated work is built purely from whole-microsecond
#: delays — these must land exactly on the microsecond grid
ALIGNED_CASES = {"condition_wait", "process_wakeups"}

_CASES = {c.name: c for c in MICRO_BENCHMARKS}


def test_condition_wait_full_matrix_is_exactly_20ms():
    """The original drift bug, at full size: 20000 x 1 us == 0.02."""
    case = _CASES["condition_wait"]
    info = case.fn(case.full_n)
    assert info["simulated"] == 0.02
    assert to_us(info["simulated"], strict=True) == 20_000


def test_process_wakeups_zero_delay_stays_at_zero():
    case = _CASES["process_wakeups"]
    assert case.fn(case.smoke_n)["simulated"] == 0.0


def test_event_churn_accumulates_zero_drift():
    """20000 events with 0.1-us-multiple delays must finish exactly at
    the single-conversion image of the max delay (1.2 us): any float
    accumulation in the clock would shear the last digits."""
    case = _CASES["event_churn"]
    info = case.fn(case.smoke_n)
    assert info["simulated"] == from_ticks(to_ticks(12e-7))


@pytest.mark.parametrize("case", MICRO_BENCHMARKS, ids=lambda c: c.name)
def test_micro_simulated_timestamps_are_exact(case):
    """Every micro case's recorded simulated clock is exact.

    Aligned cases must pass the strict microsecond check; cost-model
    cases must reproduce the identical float on a second run (the tick
    clock has no run-order or accumulation noise to leak).
    """
    info = case.fn(case.smoke_n)
    sim = info["simulated"]
    assert sim is not None and sim >= 0.0
    if case.name in ALIGNED_CASES:
        us = to_us(sim, strict=True)
        assert from_us(us) == sim
    else:
        rerun = case.fn(case.smoke_n)["simulated"]
        assert rerun == sim


def test_cached_inputs_do_not_change_simulated_results():
    """The bench input cache must be a pure wall-clock optimization:
    cached and fresh inputs drive bit-identical simulated runs."""
    from repro.core.config import FluidiCLConfig
    from repro.core.runtime import FluidiCLRuntime
    from repro.hw.machine import build_machine
    from repro.polybench.suite import make_app

    def run(inputs):
        machine = build_machine()
        config = FluidiCLConfig(initial_chunk_fraction=0.02,
                                chunk_step_fraction=0.0)
        runtime = FluidiCLRuntime(machine, config=config)
        app = make_app("gesummv", "test", size=256)
        result = app.execute(runtime, inputs=inputs, check=False)
        runtime.drain()
        return result.elapsed

    app = make_app("gesummv", "test", size=256)
    assert run(micro._cached_inputs(app)) == run(app.fresh_inputs())
