"""End-to-end serving scenarios: ServeConfig -> run_serve -> ServeReport."""

import json

import pytest

from repro.serve.run import ServeConfig, run_serve
from repro.serve.workload import TenantSpec


def small(**overrides):
    """A cheap scenario: one profiled app, small budget."""
    base = dict(seed=0, requests=60, n_tenants=2)
    base.update(overrides)
    return ServeConfig(**base)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(requests=0)
        with pytest.raises(ValueError):
            ServeConfig(arrival="uniform")
        with pytest.raises(ValueError):
            ServeConfig(utilization=0.0)

    def test_explicit_tenants_override_the_default_mix(self):
        spec = (TenantSpec("acme", "bicg", 64),)
        assert ServeConfig(tenants=spec).resolve_tenants() == spec

    def test_default_mix_is_seeded(self):
        assert (ServeConfig(seed=4).resolve_tenants()
                == ServeConfig(seed=4).resolve_tenants())


class TestRunServe:
    def test_report_shape_and_conservation(self):
        report = run_serve(small())
        assert set(report.tenants) == {"tenant0", "tenant1"}
        totals = report.totals
        assert totals["submitted"] == 60
        assert totals["admitted"] + totals["shed"] == totals["submitted"]
        assert totals["completed"] + totals["failed"] == totals["admitted"]
        assert report.ok and not report.violations
        assert report.checks > 0
        assert report.simulated_seconds > 0

    def test_same_config_bit_identical(self):
        first = run_serve(small())
        second = run_serve(small())
        assert first.digest == second.digest
        assert first.tenants == second.tenants
        assert first.simulated_seconds == second.simulated_seconds

    def test_different_seed_different_digest(self):
        assert run_serve(small()).digest != run_serve(small(seed=1)).digest

    def test_overload_sheds_but_conserves(self):
        report = run_serve(small(requests=150, utilization=3.0,
                                 max_queue_depth=2, max_inflight=1))
        totals = report.totals
        assert totals["shed"] > 0
        assert totals["admitted"] + totals["shed"] == totals["submitted"]
        assert report.ok
        assert 0.0 < totals["shed_rate"] <= 1.0

    def test_faults_compose(self):
        report = run_serve(small(fault_seed=1, fault_n=2))
        assert report.faults_injected == 2
        assert report.ok

    def test_jitter_seed_keeps_invariants(self):
        assert run_serve(small(jitter_seed=9)).ok

    def test_closed_loop(self):
        report = run_serve(small(arrival="closed", clients=4))
        # closed-loop clients wait for completion: nothing is ever shed
        assert report.totals["shed"] == 0
        assert report.totals["completed"] == 60

    def test_to_json_is_serializable(self):
        report = run_serve(small())
        blob = json.loads(json.dumps(report.to_json()))
        assert blob["ok"] is True
        assert blob["digest"] == report.digest
        assert blob["config"]["requests"] == 60
        assert {t["name"] for t in blob["config"]["tenants"]} \
            == {"tenant0", "tenant1"}

    def test_format_table_mentions_every_tenant(self):
        report = run_serve(small())
        table = report.format_table()
        assert "tenant0" in table and "tenant1" in table
        assert "digest:" in table and "submitted" in table

    def test_trace_path_writes_chrome_trace(self, tmp_path):
        path = tmp_path / "serve.json"
        run_serve(small(requests=20), trace_path=str(path))
        events = json.loads(path.read_text())["traceEvents"]
        assert any(e.get("name") == "job_done" for e in events)
