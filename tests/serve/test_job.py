"""Unit tests for jobs, SLO classes and the typed rejection."""

import pytest

from repro.serve.job import SLO_DEADLINES, Job, JobRecord, JobRejected
from repro.sim.timebase import to_ticks


class TestJob:
    def test_deadline_follows_slo_class(self):
        assert Job(0, "t", "toy", 64, slo="interactive").deadline == 2e-2
        assert Job(1, "t", "toy", 64, slo="batch").deadline == 2e-1
        assert Job(2, "t", "toy", 64, slo="best-effort").deadline == float("inf")

    def test_unknown_slo_rejected(self):
        with pytest.raises(ValueError):
            Job(0, "t", "toy", 64, slo="platinum")

    def test_slo_table_is_the_single_source(self):
        assert set(SLO_DEADLINES) == {"interactive", "batch", "best-effort"}


class TestJobRecord:
    def test_latency_is_tick_exact(self):
        record = JobRecord(job=Job(0, "t", "toy", 64),
                           submitted_ticks=to_ticks(1e-3))
        assert record.latency is None
        record.done_ticks = to_ticks(5e-3)
        record.outcome = "done"
        assert record.latency == 4e-3  # exact: µs-aligned tick difference

    def test_slo_attained_requires_done_within_deadline(self):
        record = JobRecord(job=Job(0, "t", "toy", 64, slo="interactive"),
                           submitted_ticks=0)
        assert record.slo_attained is None
        record.done_ticks = to_ticks(1e-2)  # within the 20 ms budget
        record.outcome = "done"
        assert record.slo_attained is True
        record.outcome = "failed"
        assert record.slo_attained is False

    def test_late_completion_misses_slo(self):
        record = JobRecord(job=Job(0, "t", "toy", 64, slo="interactive"),
                           submitted_ticks=0, outcome="done",
                           done_ticks=to_ticks(5e-2))
        assert record.slo_attained is False


class TestJobRejected:
    def test_carries_record_and_reason(self):
        record = JobRecord(job=Job(7, "acme", "toy", 64), submitted_ticks=0,
                           outcome="shed")
        err = JobRejected(record, "queue-full")
        assert err.record is record
        assert err.reason == "queue-full"
        assert "acme" in str(err) and "queue-full" in str(err)
