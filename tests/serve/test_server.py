"""Dispatcher, admission-control and pipeline tests for the serving core."""

import pytest

from repro.faults.schedule import FaultKind, FaultSchedule
from repro.faults.injector import install_faults
from repro.serve.job import JobRejected
from repro.sim.core import SimError

from tests.serve.conftest import GPU, make_job, make_server, toy_profile


def drain(machine, server):
    server.close_intake()
    machine.engine.run()


class TestAdmission:
    def test_admit_then_complete(self, serve_machine, toy_profiles):
        server = make_server(serve_machine, toy_profiles)
        record = server.submit(make_job(0))
        drain(serve_machine, server)
        assert record.outcome == "done"
        assert record.latency > 0
        counts = server.stats.tenant_counts("tenant0")
        assert counts == {"submitted": 1, "admitted": 1, "shed": 0,
                          "completed": 1, "failed": 0}

    def test_shed_at_bounded_depth(self, serve_machine, toy_profiles):
        server = make_server(serve_machine, toy_profiles, max_queue_depth=2)
        server.submit(make_job(0))
        server.submit(make_job(1))
        with pytest.raises(JobRejected) as excinfo:
            server.submit(make_job(2))
        assert excinfo.value.reason == "queue-full"
        assert excinfo.value.record.outcome == "shed"
        drain(serve_machine, server)
        counts = server.stats.tenant_counts("tenant0")
        assert counts["submitted"] == 3
        assert counts["admitted"] + counts["shed"] == counts["submitted"]
        assert counts["completed"] == counts["admitted"] == 2

    def test_shed_jobs_have_no_done_event(self, serve_machine, toy_profiles):
        server = make_server(serve_machine, toy_profiles, max_queue_depth=1)
        server.submit(make_job(0))
        with pytest.raises(JobRejected) as excinfo:
            server.submit(make_job(1))
        assert excinfo.value.record.done_event is None
        drain(serve_machine, server)

    def test_submit_after_close_raises(self, serve_machine, toy_profiles):
        server = make_server(serve_machine, toy_profiles)
        server.close_intake()
        with pytest.raises(SimError):
            server.submit(make_job(0))

    def test_unprofiled_app_rejected_eagerly(self, serve_machine,
                                             toy_profiles):
        server = make_server(serve_machine, toy_profiles)
        with pytest.raises(KeyError):
            server.submit(make_job(0, app="mystery"))


class TestDispatchOrder:
    def test_per_tenant_fifo(self, serve_machine, toy_profiles):
        """One tenant's jobs start strictly in admission order."""
        server = make_server(serve_machine, toy_profiles, max_inflight=1)
        for i in range(6):
            server.submit(make_job(i))
        drain(serve_machine, server)
        started = [e for e in serve_machine.tracer.events
                   if e.category == "job_started"]
        assert [e["job_id"] for e in started] == list(range(6))

    def test_weighted_fair_share_under_backlog(self, serve_machine,
                                               toy_profiles):
        """With weights 3:1 and both tenants backlogged, the heavy tenant
        gets ~3 of every 4 dispatches."""
        server = make_server(serve_machine, toy_profiles, max_inflight=1,
                            weights={"heavy": 3.0, "light": 1.0})
        for i in range(8):
            server.submit(make_job(i, tenant="heavy"))
            server.submit(make_job(100 + i, tenant="light"))
        drain(serve_machine, server)
        started = [e for e in serve_machine.tracer.events
                   if e.category == "job_started"]
        first_eight = [e["tenant"] for e in started[:8]]
        assert first_eight.count("heavy") == 6
        assert first_eight.count("light") == 2

    def test_equal_weights_alternate(self, serve_machine, toy_profiles):
        server = make_server(serve_machine, toy_profiles, max_inflight=1)
        for i in range(4):
            server.submit(make_job(2 * i, tenant="a"))
            server.submit(make_job(2 * i + 1, tenant="b"))
        drain(serve_machine, server)
        started = [e["tenant"] for e in serve_machine.tracer.events
                   if e.category == "job_started"]
        assert started == ["a", "b"] * 4

    def test_inflight_respects_cap(self, serve_machine, toy_profiles):
        server = make_server(serve_machine, toy_profiles, max_inflight=2)
        peak = []
        serve_machine.tracer.add_listener(
            lambda e: peak.append(e["inflight"])
            if e.category == "job_started" else None)
        for i in range(10):
            server.submit(make_job(i))
        drain(serve_machine, server)
        assert max(peak) <= 2


class TestPipeline:
    def test_jobs_overlap_up_to_inflight(self, serve_machine, toy_profiles):
        """Two inflight slots finish 10 jobs faster than one: host + DMA
        stages overlap even though compute serializes on the fronts."""
        server = make_server(serve_machine, toy_profiles, max_inflight=4)
        for i in range(10):
            server.submit(make_job(i))
        drain(serve_machine, server)
        four_lane = serve_machine.engine.now

        from repro.hw.machine import build_machine
        solo_machine = build_machine(trace=True)
        solo = make_server(solo_machine, toy_profiles, max_inflight=1)
        for i in range(10):
            solo.submit(make_job(i))
        drain(solo_machine, solo)
        assert four_lane < solo_machine.engine.now

    def test_compute_serializes_per_front(self, serve_machine, toy_profiles):
        """Total busy compute on the anchor device equals jobs × duration:
        the front never ran two cooperative computes at once."""
        server = make_server(serve_machine, toy_profiles, max_inflight=4)
        for i in range(5):
            server.submit(make_job(i))
        drain(serve_machine, server)
        gpu = server.platform.device_by_name(GPU)
        profile = toy_profiles[("toy", 64)]
        expected = 5 * profile.compute_seconds  # scale 1.0: all alive
        assert gpu.stats["busy_compute_time"] == pytest.approx(expected)

    def test_device_loss_rescales_survivors(self, serve_machine,
                                            toy_profiles):
        """After the GPU front dies, jobs run on the CPU's 25% share:
        compute takes 4x longer but jobs still complete."""
        server = make_server(serve_machine, toy_profiles)
        gpu = server.platform.device_by_name(GPU)
        gpu.health.declare_lost("test")
        record = server.submit(make_job(0))
        drain(serve_machine, server)
        assert record.outcome == "done"
        profile = toy_profiles[("toy", 64)]
        assert record.latency >= profile.compute_seconds / 0.25

    def test_all_devices_lost_fails_jobs(self, serve_machine, toy_profiles):
        server = make_server(serve_machine, toy_profiles)
        for device in server.platform.devices:
            device.health.declare_lost("test")
        record = server.submit(make_job(0))
        drain(serve_machine, server)
        assert record.outcome == "failed"
        assert server.stats.tenant_counts("tenant0")["failed"] == 1

    def test_transfer_fault_retries_then_completes(self, serve_machine,
                                                   toy_profiles):
        server = make_server(serve_machine, toy_profiles)
        gpu = server.platform.device_by_name(GPU)
        gpu.health.inject_transfer_faults("h2d", count=2)
        record = server.submit(make_job(0))
        drain(serve_machine, server)
        assert record.outcome == "done"
        assert gpu.health.transfer_retries == 2

    def test_injector_composes_against_server(self, serve_machine,
                                              toy_profiles):
        """The PR 2 injector drives the server like it drives a runtime."""
        schedule = FaultSchedule.single(
            FaultKind.DEVICE_STALL, at=1e-5, device="gpu", duration=5e-4)
        server = make_server(serve_machine, toy_profiles)
        install_faults(server, schedule)
        record = server.submit(make_job(0))
        drain(serve_machine, server)
        assert record.outcome == "done"
        assert server.stats.extra["faults_injected"] == 1
        # the stall parked the compute stage: latency includes the freeze
        assert record.latency > 5e-4


class TestValidation:
    def test_bad_limits_rejected(self, serve_machine, toy_profiles):
        with pytest.raises(ValueError):
            make_server(serve_machine, toy_profiles, max_queue_depth=0)
        with pytest.raises(ValueError):
            make_server(serve_machine, toy_profiles, max_inflight=0)

    def test_gpu_cpu_device_shorthands(self, serve_machine, toy_profiles):
        server = make_server(serve_machine, toy_profiles)
        assert server.gpu_device.name == GPU
        assert server.cpu_device.name == "Xeon W3550"

    def test_shorthands_fall_back_without_the_kind(self, toy_profiles):
        """big.little has no CPU-kind device: the injector shorthands
        resolve to the device-list endpoints instead of raising."""
        from repro.hw.machine import build_machine

        machine = build_machine(preset="big.little")
        profiles = {("toy", 64): toy_profile()}
        server = make_server(machine, profiles)
        assert server.gpu_device is server.platform.devices[0]
        assert server.cpu_device is server.platform.devices[-1]
