"""Property tests: same-instant submission bursts keep the dispatcher's
guarantees under arbitrary tenant interleavings, weights, admission
depths and same-instant engine jitter (satellite of the serving PR).

Every scenario submits its whole burst at t=0 from host context — the
hardest case for FIFO bookkeeping, since all queue entries and the
dispatcher wake-up land on the same tick — then checks:

* per-tenant FIFO: each tenant's jobs *start* in submission order;
* admission conservation: ``admitted + shed == submitted`` and every
  admitted job completes;
* the coherence monitor's invariant #12 agrees (0 violations).
"""

from hypothesis import given, settings, strategies as st

from repro.check.monitor import CoherenceMonitor
from repro.hw.machine import build_machine
from repro.serve.job import JobRejected
from repro.serve.server import Server

from tests.serve.conftest import make_job, toy_profile

TENANTS = ("t0", "t1", "t2")

scenario = st.fixed_dictionaries({
    "tenant_seq": st.lists(st.integers(0, 2), min_size=1, max_size=20),
    "weights": st.tuples(*(st.floats(0.25, 8.0) for _ in TENANTS)),
    "depth": st.integers(1, 8),
    "jitter": st.none() | st.integers(0, 999),
})


@settings(max_examples=40, deadline=None)
@given(scenario=scenario)
def test_same_instant_burst_keeps_fifo_and_conservation(scenario):
    machine = build_machine(trace=True,
                            interleave_seed=scenario["jitter"])
    monitor = CoherenceMonitor().attach(machine.tracer)
    server = Server(machine, {("toy", 64): toy_profile()},
                    max_queue_depth=scenario["depth"],
                    max_inflight=2,
                    weights=dict(zip(TENANTS, scenario["weights"])))

    admitted = {name: [] for name in TENANTS}
    shed = 0
    for job_id, idx in enumerate(scenario["tenant_seq"]):
        tenant = TENANTS[idx]
        try:
            server.submit(make_job(job_id, tenant=tenant))
        except JobRejected:
            shed += 1
        else:
            admitted[tenant].append(job_id)
    server.close_intake()
    machine.engine.run()
    monitor.final_check()

    assert monitor.ok, monitor.report()
    started = {name: [] for name in TENANTS}
    done = 0
    for event in machine.tracer.events:
        if event.category == "job_started":
            started[event["tenant"]].append(event["job_id"])
        elif event.category == "job_done":
            done += 1
    # per-tenant FIFO: started order == admission order, per tenant
    assert started == admitted
    # conservation: admitted + shed == submitted; all admitted completed
    n_admitted = sum(len(ids) for ids in admitted.values())
    assert n_admitted + shed == len(scenario["tenant_seq"])
    assert done == n_admitted
