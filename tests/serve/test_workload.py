"""Tenant-mix and arrival-generator tests (repro.serve.workload)."""

import pytest

from repro.hw.machine import build_machine
from repro.serve.workload import TenantSpec, default_tenant_mix, spawn_workload

from tests.serve.conftest import make_server, toy_profile


def toy_tenants(n=1, **overrides):
    return tuple(
        TenantSpec(name=f"t{i}", app="toy", size=64, **overrides)
        for i in range(n)
    )


def serve_pair(max_queue_depth=64, max_inflight=4):
    machine = build_machine()
    server = make_server(machine, {("toy", 64): toy_profile()},
                         max_queue_depth=max_queue_depth,
                         max_inflight=max_inflight)
    return machine, server


class TestTenantSpec:
    def test_rejects_unknown_slo(self):
        with pytest.raises(ValueError):
            TenantSpec("t", "toy", 64, slo="gold")

    def test_rejects_nonpositive_weight_and_share(self):
        with pytest.raises(ValueError):
            TenantSpec("t", "toy", 64, weight=0.0)
        with pytest.raises(ValueError):
            TenantSpec("t", "toy", 64, share=-1.0)


class TestDefaultMix:
    def test_same_seed_same_mix(self):
        assert default_tenant_mix(7) == default_tenant_mix(7)

    def test_different_seeds_reshuffle_apps(self):
        apps = {tuple(t.app for t in default_tenant_mix(s)) for s in range(8)}
        assert len(apps) > 1

    def test_first_tenant_is_heavy(self):
        mix = default_tenant_mix(0, n=3)
        assert [t.name for t in mix] == ["tenant0", "tenant1", "tenant2"]
        assert mix[0].weight == mix[0].share == 2.0
        assert mix[1].weight == mix[2].weight == 1.0

    def test_needs_at_least_one_tenant(self):
        with pytest.raises(ValueError):
            default_tenant_mix(0, n=0)


class TestSpawnValidation:
    def test_bad_parameters_rejected(self):
        machine, server = serve_pair()
        tenants = toy_tenants()
        with pytest.raises(ValueError):
            spawn_workload(server, (), requests=1, seed=0)
        with pytest.raises(ValueError):
            spawn_workload(server, tenants, requests=0, seed=0)
        with pytest.raises(ValueError):
            spawn_workload(server, tenants, requests=1, seed=0,
                           arrival="uniform")
        with pytest.raises(ValueError):
            spawn_workload(server, tenants, requests=1, seed=0, rate=0.0)
        with pytest.raises(ValueError):
            spawn_workload(server, tenants, requests=1, seed=0,
                           arrival="burst", on_fraction=1.0)
        with pytest.raises(ValueError):
            spawn_workload(server, tenants, requests=1, seed=0,
                           arrival="burst", burst_factor=0.5)
        with pytest.raises(ValueError):
            spawn_workload(server, tenants, requests=1, seed=0,
                           arrival="closed", clients=0)


class TestBudget:
    @pytest.mark.parametrize("arrival", ["poisson", "burst", "closed"])
    def test_exactly_requests_records(self, arrival):
        machine, server = serve_pair()
        _done, records = spawn_workload(
            server, toy_tenants(n=2), requests=30, seed=3,
            arrival=arrival, rate=5000.0, clients=3, think_time=1e-4)
        machine.engine.run()
        assert len(records) == 30
        assert sorted(r.job.job_id for r in records) == list(range(30))
        assert all(r.outcome in ("done", "shed") for r in records)

    def test_intake_closes_after_budget(self):
        machine, server = serve_pair()
        done, _records = spawn_workload(
            server, toy_tenants(), requests=5, seed=0, rate=5000.0)
        machine.engine.run()
        assert done.triggered
        from repro.serve.job import Job
        from repro.sim.core import SimError
        with pytest.raises(SimError):
            server.submit(Job(job_id=99, tenant="t0", app="toy", size=64))


class TestDeterminism:
    @pytest.mark.parametrize("arrival", ["poisson", "burst", "closed"])
    def test_same_seed_identical_arrival_ticks(self, arrival):
        def run(seed):
            machine, server = serve_pair()
            _done, records = spawn_workload(
                server, toy_tenants(n=2), requests=40, seed=seed,
                arrival=arrival, rate=3000.0, clients=4, think_time=1e-4)
            machine.engine.run()
            return [(r.job.job_id, r.job.tenant, r.submitted_ticks)
                    for r in records]

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_share_skews_the_arrival_stream(self):
        heavy = TenantSpec("heavy", "toy", 64, share=9.0)
        light = TenantSpec("light", "toy", 64, share=1.0)
        machine, server = serve_pair()
        _done, records = spawn_workload(
            server, (heavy, light), requests=200, seed=0, rate=5000.0)
        machine.engine.run()
        heavy_n = sum(1 for r in records if r.job.tenant == "heavy")
        assert heavy_n > 150  # ~180 expected at 9:1 shares

    def test_burst_clusters_arrivals(self):
        """MMPP arrivals have a higher inter-arrival variance than a
        Poisson stream of the same average rate."""
        def gaps(arrival):
            machine, server = serve_pair()
            _done, records = spawn_workload(
                server, toy_tenants(), requests=300, seed=5,
                arrival=arrival, rate=2000.0, burst_factor=8.0,
                on_fraction=0.125)
            machine.engine.run()
            ticks = sorted(r.submitted_ticks for r in records)
            return [b - a for a, b in zip(ticks, ticks[1:])]

        def cv2(samples):
            mean = sum(samples) / len(samples)
            var = sum((s - mean) ** 2 for s in samples) / len(samples)
            return var / (mean * mean)

        assert cv2(gaps("burst")) > 1.5 * cv2(gaps("poisson"))
