"""Shared fixtures for the serving-layer tests.

``toy_profiles`` sidesteps :func:`repro.serve.profile.measure_profile`
(which runs a real cooperative execution) with hand-built
:class:`AppProfile` values, so dispatcher/admission tests run in
microseconds of simulated time and assert exact schedules.
"""

from __future__ import annotations

import pytest

from repro.hw.machine import build_machine
from repro.serve.job import Job
from repro.serve.profile import AppProfile
from repro.serve.server import Server

GPU = "Tesla C2070"
CPU = "Xeon W3550"


def toy_profile(app="toy", size=64, compute=1e-4, host=1e-5,
                h2d=4096, d2h=4096):
    """A two-device profile with GPU carrying 3/4 of the work."""
    return AppProfile(
        app=app,
        size=size,
        machine="default",
        elapsed_seconds=compute + host,
        compute_seconds=compute,
        host_seconds=host,
        h2d_bytes={GPU: h2d, CPU: h2d // 4},
        d2h_bytes={GPU: d2h, CPU: d2h // 4},
        fractions={GPU: 0.75, CPU: 0.25},
    )


@pytest.fixture
def toy_profiles():
    return {("toy", 64): toy_profile()}


@pytest.fixture
def serve_machine():
    return build_machine(trace=True)


def make_server(machine, profiles, **kwargs):
    return Server(machine, profiles, **kwargs)


def make_job(job_id, tenant="tenant0", app="toy", size=64, slo="batch"):
    return Job(job_id=job_id, tenant=tenant, app=app, size=size, slo=slo)
