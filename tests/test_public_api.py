"""The top-level public API stays importable and coherent."""

import numpy as np
import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_surface(self):
        """The README's four-line quickstart must keep working."""
        runtime = repro.FluidiCLRuntime(repro.build_machine())
        from repro.polybench import GemmApp

        result = GemmApp(n=128).execute(runtime)
        assert result.correct

    def test_runtimes_share_interface(self):
        for name in ("create_buffer", "enqueue_write_buffer",
                     "enqueue_nd_range_kernel", "enqueue_read_buffer",
                     "finish", "release"):
            assert hasattr(repro.FluidiCLRuntime, name)
            assert hasattr(repro.SingleDeviceRuntime, name)


class TestDtypeGenerality:
    """FluidiCL must be dtype-agnostic: merge granularity follows the
    buffer's element type (paper section 4.3's stored type metadata)."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int32,
                                       np.int64])
    def test_cooperative_execution_any_dtype(self, dtype):
        from repro.hw.cost import WorkGroupCost
        from repro.kernels.dsl import Intent

        n, local = 2048, 16

        def body(ctx):
            rows = ctx.rows()
            ctx["y"][rows] = ctx["x"][rows] * 3

        spec = repro.KernelSpec(
            name="triple",
            args=(repro.buffer_arg("x"), repro.buffer_arg("y", Intent.OUT)),
            body=body,
            cost=WorkGroupCost(
                flops=local * 32.0,
                bytes_read=local * 8 * 64.0,
                bytes_written=local * 8 * 64.0,
                loop_iters=16,
                compute_efficiency={"cpu": 0.6, "gpu": 0.4},
                memory_efficiency={"cpu": 0.6, "gpu": 0.4},
            ),
        )
        runtime = repro.FluidiCLRuntime(repro.build_machine())
        if np.issubdtype(dtype, np.integer):
            x = np.arange(n).astype(dtype)
        else:
            x = (np.arange(n) * 0.5).astype(dtype)
        buf_x = runtime.create_buffer("x", (n,), dtype)
        buf_y = runtime.create_buffer("y", (n,), dtype)
        runtime.enqueue_write_buffer(buf_x, x)
        runtime.enqueue_nd_range_kernel(
            spec, repro.NDRange(n, local), {"x": buf_x, "y": buf_y}
        )
        y = np.zeros(n, dtype=dtype)
        runtime.enqueue_read_buffer(buf_y, y)
        runtime.finish()
        np.testing.assert_array_equal(y, x * 3)
